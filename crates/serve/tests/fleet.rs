//! Fleet-level end-to-end properties: determinism, conservation,
//! routing-policy behaviour, autoscaler pricing, and sanitizer
//! cleanliness.

use dgnn_datasets::{wikipedia, Scale};
use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_models::{InferenceConfig, Jodie, JodieConfig, ReplicaHandle, Tgat, TgatConfig};
use dgnn_serve::{
    serve_fleet, AutoscalerConfig, FleetConfig, RouterPolicy, ServedModel, WorkloadShape, UNBOUNDED,
};

fn jodie_entry(weight: f64) -> ServedModel {
    let data = wikipedia(Scale::Tiny, 11);
    ServedModel {
        handle: ReplicaHandle::new("jodie", move || {
            Box::new(Jodie::new(data.clone(), JodieConfig::default(), 11))
        }),
        cfg: InferenceConfig::default()
            .with_batch_size(64)
            .with_max_units(1),
        weight,
    }
}

fn tgat_entry(weight: f64) -> ServedModel {
    let data = wikipedia(Scale::Tiny, 13);
    ServedModel {
        handle: ReplicaHandle::new("tgat", move || {
            Box::new(Tgat::new(data.clone(), TgatConfig::default(), 13))
        }),
        cfg: InferenceConfig::default()
            .with_batch_size(32)
            .with_neighbors(5)
            .with_max_units(1),
        weight,
    }
}

fn base_cfg() -> FleetConfig {
    FleetConfig {
        seed: 7,
        n_requests: 24,
        arrival_rate_rps: 200.0,
        shape: WorkloadShape::Poisson,
        policy: RouterPolicy::JoinShortestQueue,
        batch_window: DurationNs::from_millis(3),
        max_batch: 4,
        initial_pools: 2,
        replicas_per_pool: 1,
        queue_bound: UNBOUNDED,
        slo: DurationNs::from_millis(250),
        autoscaler: None,
        mode: ExecMode::Gpu,
        trace: false,
        spec: PlatformSpec::default(),
    }
}

fn burst_scaler() -> AutoscalerConfig {
    AutoscalerConfig {
        min_pools: 1,
        max_pools: 4,
        scale_out_queue: 2,
        scale_in_queue: 1,
        idle_window: DurationNs::from_millis(20),
        cooldown: DurationNs::from_millis(10),
    }
}

#[test]
fn fleet_replay_is_bit_deterministic() {
    let mut cfg = base_cfg();
    cfg.policy = RouterPolicy::PowerOfTwoChoices;
    cfg.autoscaler = Some(burst_scaler());
    cfg.shape = WorkloadShape::FlashCrowd {
        at: DurationNs::from_millis(20),
        duration: DurationNs::from_millis(40),
        multiplier: 8.0,
    };
    let a = serve_fleet(&cfg, &[jodie_entry(3.0), tgat_entry(1.0)]);
    let b = serve_fleet(&cfg, &[jodie_entry(3.0), tgat_entry(1.0)]);
    assert_eq!(a.requests, b.requests, "per-request records must replay");
    assert_eq!(
        a.scale_events, b.scale_events,
        "scale decisions must replay"
    );
    assert_eq!(a.report.makespan, b.report.makespan);
    assert_eq!(
        a.report.replica_seconds.to_bits(),
        b.report.replica_seconds.to_bits()
    );
    let checks_a: Vec<u32> = a
        .batches
        .iter()
        .map(|x| x.batch.summary.checksum.to_bits())
        .collect();
    let checks_b: Vec<u32> = b
        .batches
        .iter()
        .map(|x| x.batch.summary.checksum.to_bits())
        .collect();
    assert_eq!(checks_a, checks_b, "service numerics must be bit-identical");
}

#[test]
fn every_request_is_served_or_shed_exactly_once() {
    for policy in [
        RouterPolicy::AffinityFirst,
        RouterPolicy::PowerOfTwoChoices,
        RouterPolicy::JoinShortestQueue,
    ] {
        let mut cfg = base_cfg();
        cfg.policy = policy;
        let outcome = serve_fleet(&cfg, &[jodie_entry(1.0), tgat_entry(1.0)]);
        assert_eq!(
            outcome.report.served + outcome.report.shed,
            cfg.n_requests,
            "request conservation under {:?}",
            policy
        );
        let mut ids: Vec<usize> = outcome
            .requests
            .iter()
            .map(|r| r.id)
            .chain(outcome.shed.iter().map(|r| r.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cfg.n_requests, "no id served twice or lost");
        for r in &outcome.requests {
            assert!(r.arrival <= r.assembled && r.assembled <= r.started);
            assert!(r.started < r.completed);
        }
    }
}

#[test]
fn jsq_spreads_load_across_pools() {
    let mut cfg = base_cfg();
    cfg.n_requests = 32;
    let outcome = serve_fleet(&cfg, &[jodie_entry(1.0)]);
    let mut pools_used: Vec<usize> = outcome.batches.iter().map(|b| b.pool).collect();
    pools_used.sort_unstable();
    pools_used.dedup();
    assert_eq!(pools_used, vec![0, 1], "JSQ must use both pools");
}

#[test]
fn affinity_first_cuts_cold_starts_versus_jsq() {
    // Two models, two single-replica pools, arrivals sparse enough
    // (2 s gaps ≫ ~0.25 s service) that after the provisioning phase
    // each batch dispatches before the next arrival. Affinity then
    // routes each model to the pool last holding it and the fleet
    // settles with zero further swaps. JSQ sees empty queues
    // everywhere, ties to pool 0, and funnels the alternating mix
    // through one slot — paying a model swap on nearly every
    // alternation.
    let mut cfg = base_cfg();
    cfg.n_requests = 24;
    cfg.arrival_rate_rps = 0.5;
    cfg.policy = RouterPolicy::AffinityFirst;
    let affinity = serve_fleet(&cfg, &[jodie_entry(1.0), tgat_entry(1.0)]);
    cfg.policy = RouterPolicy::JoinShortestQueue;
    let jsq = serve_fleet(&cfg, &[jodie_entry(1.0), tgat_entry(1.0)]);
    assert!(
        affinity.report.cold_services < jsq.report.cold_services,
        "affinity {} cold vs jsq {} cold",
        affinity.report.cold_services,
        jsq.report.cold_services
    );
    // Arrivals queued during the ~6.5 s provisioning phase can mix
    // models inside a pool before residency is observable, so a few
    // swaps happen at start-up; affinity must pin shortly after.
    assert!(
        affinity.report.cold_services <= 4,
        "affinity should pin each model after the start-up pileup, got {}",
        affinity.report.cold_services
    );
}

#[test]
fn autoscaler_pays_warmup_per_spawn_and_absorbs_a_flash_crowd() {
    let mut cfg = base_cfg();
    cfg.n_requests = 48;
    cfg.initial_pools = 1;
    cfg.arrival_rate_rps = 300.0;
    cfg.shape = WorkloadShape::FlashCrowd {
        at: DurationNs::from_millis(30),
        duration: DurationNs::from_millis(80),
        multiplier: 10.0,
    };
    let zoo = || vec![jodie_entry(1.0), tgat_entry(1.0)];

    let static_run = serve_fleet(&cfg, &zoo());
    cfg.autoscaler = Some(burst_scaler());
    let scaled = serve_fleet(&cfg, &zoo());

    assert!(
        scaled.report.scale_outs >= 1,
        "the burst must trigger a scale-out: {:?}",
        scaled.scale_events
    );
    assert!(scaled.report.peak_pools > 1);
    assert_eq!(
        scaled.report.pools_spawned,
        1 + scaled.report.scale_outs,
        "every scale-out spawns exactly one pool"
    );
    // Each spawned pool pays provisioning warm-up — the scale-out price.
    assert!(
        scaled.report.provision.total() > static_run.report.provision.total(),
        "spawned pools must pay provisioning: scaled {:?} vs static {:?}",
        scaled.report.provision.total(),
        static_run.report.provision.total()
    );
    // The capacity it bought shows up as a shorter backlog drain.
    assert!(
        scaled.report.makespan < static_run.report.makespan,
        "extra pools must drain the burst sooner: {} vs {} ns",
        scaled.report.makespan.as_nanos(),
        static_run.report.makespan.as_nanos()
    );
    assert!(
        scaled.report.slo_attainment() >= static_run.report.slo_attainment(),
        "scaling out must not hurt SLO attainment"
    );
}

#[test]
fn scale_in_retires_pools_and_stops_billing_replica_seconds() {
    let mut cfg = base_cfg();
    cfg.n_requests = 48;
    cfg.initial_pools = 1;
    cfg.arrival_rate_rps = 1.0;
    // A burst carrying ≈ 2/3 of the stream, then a sparse 1 rps tail
    // long enough (vs the ~0.25 s service time) for queues to drain
    // and the idle window to elapse between arrivals.
    cfg.shape = WorkloadShape::FlashCrowd {
        at: DurationNs::from_secs_f64(2.0),
        duration: DurationNs::from_secs_f64(5.0),
        multiplier: 6.0,
    };
    cfg.autoscaler = Some(AutoscalerConfig {
        idle_window: DurationNs::from_secs_f64(2.0),
        cooldown: DurationNs::from_secs_f64(1.0),
        ..burst_scaler()
    });
    let outcome = serve_fleet(&cfg, &[jodie_entry(1.0)]);
    let report = &outcome.report;
    assert!(report.scale_outs >= 1, "{:?}", outcome.scale_events);
    assert!(report.scale_ins >= 1, "{:?}", outcome.scale_events);
    assert!(report.final_pools < report.peak_pools);
    // Retired pools stop accruing: total replica-seconds must be less
    // than running the peak fleet for the whole makespan.
    let peak_bill =
        (report.peak_pools * report.replicas_per_pool) as f64 * report.makespan.as_secs_f64();
    assert!(
        report.replica_seconds < peak_bill,
        "replica-seconds {} must undercut the peak bill {peak_bill}",
        report.replica_seconds
    );
}

#[test]
fn queue_bound_sheds_and_the_render_names_the_bound() {
    let mut cfg = base_cfg();
    cfg.queue_bound = 1;
    cfg.arrival_rate_rps = 5_000.0;
    let outcome = serve_fleet(&cfg, &[jodie_entry(1.0)]);
    assert!(outcome.report.shed > 0, "overload must shed");
    assert!(outcome.report.shed_rate() > 0.0);
    let text = outcome.report.render("bounded fleet");
    assert!(text.contains("shed (bound 1)"), "{text}");

    let unbounded = serve_fleet(&base_cfg(), &[jodie_entry(1.0)]);
    let text = unbounded.report.render("unbounded fleet");
    assert!(text.contains("shedding disabled"), "{text}");
    assert!(!text.contains("0 shed"), "{text}");
}

#[test]
fn fleet_sessions_audit_clean() {
    let mut cfg = base_cfg();
    cfg.trace = true;
    cfg.n_requests = 16;
    cfg.autoscaler = Some(burst_scaler());
    cfg.arrival_rate_rps = 600.0;
    let outcome = serve_fleet(&cfg, &[jodie_entry(1.0), tgat_entry(1.0)]);
    assert_eq!(
        outcome.sessions.len(),
        outcome.report.pools_spawned * outcome.report.replicas_per_pool
    );
    for (i, session) in outcome.sessions.iter().enumerate() {
        let report = dgnn_analysis::audit(session);
        assert!(
            report.is_clean(),
            "fleet replica {i} timeline has hazards: {report:?}"
        );
    }
}

#[test]
fn fleet_config_validates_rate_and_shape() {
    let mut cfg = base_cfg();
    assert!(cfg.validate().is_ok());
    cfg.arrival_rate_rps = 0.0;
    assert_eq!(cfg.validate().unwrap_err().reason, "not positive");
    cfg.arrival_rate_rps = 100.0;
    cfg.shape = WorkloadShape::Diurnal {
        period: DurationNs::from_secs_f64(1.0),
        amplitude: 2.0,
    };
    let err = cfg.validate().unwrap_err();
    assert_eq!(err.what, "diurnal amplitude");
}

#[test]
fn report_renders_fleet_metrics() {
    let mut cfg = base_cfg();
    cfg.autoscaler = Some(burst_scaler());
    let outcome = serve_fleet(&cfg, &[jodie_entry(1.0)]);
    let text = outcome.report.render("fleet smoke");
    for needle in [
        "policy: shortest_queue",
        "shape: poisson",
        "replica-seconds:",
        "SLO",
        "attained",
        "scale:",
        "warm-up share",
    ] {
        assert!(text.contains(needle), "report missing {needle}:\n{text}");
    }
}
