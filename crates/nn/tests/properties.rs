//! Property-style tests over the neural-network layers, driven by a
//! seeded sweep so the suite builds offline.

use dgnn_device::{DeviceTensor, Dispatcher, ExecMode, Executor, PlatformSpec};
use dgnn_nn::{
    BochnerTimeEncoder, GcnLayer, GruCell, LayerNorm, Linear, LstmCell, Mlp, Module,
    MultiHeadAttention, RnnCell, Time2Vec,
};
use dgnn_tensor::{Initializer, Tensor, TensorRng};

fn cpu() -> Executor {
    Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
}

fn dt(t: Tensor) -> DeviceTensor {
    DeviceTensor::host(t)
}

#[test]
fn linear_output_shape_and_finiteness() {
    let mut sweep = TensorRng::seed(0x11a1);
    for _ in 0..32 {
        let (m, i, o) = (
            sweep.index(11) + 1,
            sweep.index(23) + 1,
            sweep.index(23) + 1,
        );
        let seed = sweep.next_u64();
        let mut rng = TensorRng::seed(seed);
        let layer = Linear::new(i, o, &mut rng);
        let x = dt(TensorRng::seed(seed ^ 1).init(&[m, i], Initializer::Normal(2.0)));
        let mut ex = cpu();
        let y = layer.forward(&mut Dispatcher::new(&mut ex), &x).unwrap();
        assert_eq!(y.data().dims(), &[m, o]);
        assert!(y.data().all_finite());
    }
}

#[test]
fn linear_is_linear() {
    let mut sweep = TensorRng::seed(0x11a2);
    for _ in 0..32 {
        let (m, i, o) = (sweep.index(7) + 1, sweep.index(11) + 1, sweep.index(11) + 1);
        let seed = sweep.next_u64();
        let mut rng = TensorRng::seed(seed);
        let layer = Linear::new(i, o, &mut rng);
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let a = TensorRng::seed(seed ^ 2).init(&[m, i], Initializer::Uniform(1.0));
        let b = TensorRng::seed(seed ^ 3).init(&[m, i], Initializer::Uniform(1.0));
        // f(a) + f(b) - f(0) == f(a + b)  (affine with shared bias)
        let fa = layer.forward(&mut dx, &dt(a.clone())).unwrap();
        let fb = layer.forward(&mut dx, &dt(b.clone())).unwrap();
        let f0 = layer.forward(&mut dx, &dt(Tensor::zeros(&[m, i]))).unwrap();
        let fab = layer.forward(&mut dx, &dt(a.add(&b).unwrap())).unwrap();
        fa.data()
            .add(fb.data())
            .unwrap()
            .sub(f0.data())
            .unwrap()
            .assert_close(fab.data(), 1e-3);
    }
}

#[test]
fn recurrent_cells_bound_their_state() {
    let mut sweep = TensorRng::seed(0x11a3);
    for _ in 0..32 {
        let (b, i, h) = (sweep.index(5) + 1, sweep.index(9) + 1, sweep.index(9) + 1);
        let seed = sweep.next_u64();
        let mut rng = TensorRng::seed(seed);
        let x = dt(TensorRng::seed(seed ^ 4).init(&[b, i], Initializer::Normal(3.0)));

        let gru = GruCell::new(i, h, &mut rng);
        let h0 = dt(TensorRng::seed(seed ^ 5).init(&[b, h], Initializer::Uniform(1.0)));
        let mut ex1 = cpu();
        let h1 = gru
            .forward(&mut Dispatcher::new(&mut ex1), &x, &h0)
            .unwrap();
        assert!(h1.data().as_slice().iter().all(|v| v.abs() <= 1.01));

        let rnn = RnnCell::new(i, h, &mut rng);
        let mut ex2 = cpu();
        let r1 = rnn
            .forward(&mut Dispatcher::new(&mut ex2), &x, &h0)
            .unwrap();
        assert!(r1.data().as_slice().iter().all(|v| v.abs() <= 1.0));

        let lstm = LstmCell::new(i, h, &mut rng);
        let mut ex3 = cpu();
        let mut dx3 = Dispatcher::new(&mut ex3);
        let state = lstm.zero_state(&mut dx3, b);
        let (hh, cc) = lstm.forward(&mut dx3, &x, &state).unwrap();
        assert!(hh.data().all_finite() && cc.data().all_finite());
        assert!(hh.data().as_slice().iter().all(|v| v.abs() <= 1.0));
    }
}

#[test]
fn attention_output_is_convex_ish_in_values() {
    let mut sweep = TensorRng::seed(0x11a4);
    for _ in 0..32 {
        let (m, n) = (sweep.index(4) + 1, sweep.index(7) + 1);
        let seed = sweep.next_u64();
        // With all values equal to a constant row v, attention output is
        // Wo·(Wv·v) for every query regardless of scores.
        let d = 8usize;
        let mut rng = TensorRng::seed(seed);
        let attn = MultiHeadAttention::new(d, 2, &mut rng);
        let q = dt(TensorRng::seed(seed ^ 6).init(&[m, d], Initializer::Normal(1.0)));
        let k = dt(TensorRng::seed(seed ^ 7).init(&[n, d], Initializer::Normal(1.0)));
        let row = TensorRng::seed(seed ^ 8).init(&[1, d], Initializer::Normal(1.0));
        let mut v = Tensor::zeros(&[n, d]);
        for r in 0..n {
            v = v.scatter_rows(&[r], &row).unwrap();
        }
        let mut ex = cpu();
        let out = attn
            .forward(&mut Dispatcher::new(&mut ex), &q, &k, &dt(v))
            .unwrap();
        for r in 1..m {
            out.data()
                .row(0)
                .unwrap()
                .assert_close(&out.data().row(r).unwrap(), 1e-4);
        }
    }
}

#[test]
fn gcn_respects_graph_locality() {
    let mut sweep = TensorRng::seed(0x11a5);
    for _ in 0..32 {
        let n = sweep.index(8) + 2;
        let seed = sweep.next_u64();
        // With identity adjacency (no edges, self-loops only), output row
        // i depends only on input row i.
        let d = 4usize;
        let mut rng = TensorRng::seed(seed);
        let layer = GcnLayer::new(d, d, &mut rng);
        let adj = dt(Tensor::eye(n));
        let x1 = TensorRng::seed(seed ^ 9).init(&[n, d], Initializer::Normal(1.0));
        let mut x2 = x1.clone();
        // Perturb only the last row.
        let noise = TensorRng::seed(seed ^ 10).init(&[1, d], Initializer::Normal(1.0));
        x2 = x2.scatter_rows(&[n - 1], &noise).unwrap();
        let mut ex1 = cpu();
        let y1 = layer
            .forward(&mut Dispatcher::new(&mut ex1), &adj, &dt(x1))
            .unwrap();
        let mut ex2 = cpu();
        let y2 = layer
            .forward(&mut Dispatcher::new(&mut ex2), &adj, &dt(x2))
            .unwrap();
        for r in 0..n - 1 {
            y1.data()
                .row(r)
                .unwrap()
                .assert_close(&y2.data().row(r).unwrap(), 1e-5);
        }
    }
}

#[test]
fn time_encoders_are_deterministic_and_bounded() {
    let mut sweep = TensorRng::seed(0x11a6);
    for _ in 0..32 {
        let (n, d) = (sweep.index(19) + 1, sweep.index(15) + 1);
        let seed = sweep.next_u64();
        let mut rng = TensorRng::seed(seed);
        let bochner = BochnerTimeEncoder::new(d, &mut rng);
        let t2v = Time2Vec::new(d, &mut rng);
        let ts = dt(TensorRng::seed(seed ^ 11).init(&[n], Initializer::Uniform(100.0)));
        let mut ex1 = cpu();
        let e1 = bochner
            .forward(&mut Dispatcher::new(&mut ex1), &ts)
            .unwrap();
        let mut ex2 = cpu();
        let e2 = bochner
            .forward(&mut Dispatcher::new(&mut ex2), &ts)
            .unwrap();
        assert_eq!(e1.data(), e2.data());
        let bound = (1.0 / d as f32).sqrt() + 1e-5;
        assert!(e1.data().as_slice().iter().all(|v| v.abs() <= bound));
        let mut ex3 = cpu();
        assert!(t2v
            .forward(&mut Dispatcher::new(&mut ex3), &ts)
            .unwrap()
            .data()
            .all_finite());
    }
}

#[test]
fn layernorm_is_shift_invariant() {
    let mut sweep = TensorRng::seed(0x11a7);
    for _ in 0..32 {
        let m = sweep.index(7) + 1;
        let seed = sweep.next_u64();
        let d = 8usize;
        let mut rng = TensorRng::seed(seed);
        let ln = LayerNorm::new(d, &mut rng);
        let x = TensorRng::seed(seed ^ 12).init(&[m, d], Initializer::Normal(2.0));
        let shifted = x.add_scalar(5.0);
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let y1 = ln.forward(&mut dx, &dt(x)).unwrap();
        let y2 = ln.forward(&mut dx, &dt(shifted)).unwrap();
        y1.data().assert_close(y2.data(), 1e-3);
    }
}

#[test]
fn param_counts_are_consistent() {
    let mut sweep = TensorRng::seed(0x11a8);
    for _ in 0..32 {
        let (i, h) = (sweep.index(15) + 1, sweep.index(15) + 1);
        let mut rng = TensorRng::seed(sweep.next_u64());
        let mlp = Mlp::new(&[i, h, 1], &mut rng);
        let total: u64 = mlp.parameters().iter().map(|p| p.value.byte_len()).sum();
        assert_eq!(mlp.param_bytes(), total);
        assert_eq!(mlp.param_tensor_count(), 4);
    }
}

#[test]
fn every_forward_advances_the_clock() {
    let mut sweep = TensorRng::seed(0x11a9);
    for _ in 0..16 {
        let m = sweep.index(5) + 1;
        let d = 8usize;
        let mut rng = TensorRng::seed(sweep.next_u64());
        let layer = Linear::new(d, d, &mut rng);
        let attn = MultiHeadAttention::new(d, 2, &mut rng);
        let x = dt(Tensor::ones(&[m, d]));
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let t0 = dx.now();
        layer.forward(&mut dx, &x).unwrap();
        let t1 = dx.now();
        attn.forward(&mut dx, &x, &x, &x).unwrap();
        let t2 = dx.now();
        assert!(t0 < t1 && t1 < t2);
    }
}
