//! Regenerates Figure 9: ASTGNN GPU-utilization time-series for batch
//! sizes 4, 8 and 16 over two inference iterations.
//!
//! The paper's shape: small batches leave the GPU idle around the
//! prediction step; at batch 16 the GPU is nearly saturated and the
//! second iteration's encoding is delayed behind it.
//!
//! Usage: `fig9_astgnn_timeline [--scale ...]`

use dgnn_bench::{build_model, measure, parse_opts};
use dgnn_device::{DurationNs, ExecMode};
use dgnn_models::InferenceConfig;
use dgnn_profile::UtilizationReport;

fn main() {
    let opts = parse_opts();
    for bs in [4usize, 8, 16] {
        let mut m = build_model("astgnn", opts.scale, opts.seed);
        let cfg = InferenceConfig::default()
            .with_batch_size(bs)
            .with_max_units(2);
        let run = measure(m.as_mut(), ExecMode::Gpu, &cfg);
        let inference = run
            .executor
            .scopes()
            .iter()
            .find(|s| s.path == "inference")
            .expect("inference scope");
        let span = inference.end - inference.start;
        // 40 windows across the two iterations.
        let window = DurationNs::from_nanos((span.as_nanos() / 40).max(1));
        let series: Vec<_> = UtilizationReport::series(
            run.executor.timeline(),
            inference.start,
            inference.end,
            window,
        )
        .into_iter()
        .map(|(t, u)| (t - inference.start, u))
        .collect();
        println!(
            "{}",
            UtilizationReport::render_series(
                &series,
                &format!(
                    "Fig 9 — ASTGNN GPU utilization, batch size {bs} (2 iterations, avg {:.1}%)",
                    run.profile.utilization.busy_fraction * 100.0
                ),
            )
        );
    }
}
