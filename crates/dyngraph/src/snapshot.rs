//! Discrete-time dynamic graphs: snapshot sequences.

use crate::{EventStream, Graph, GraphError, Result};

/// One timestamped graph snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot time (window start).
    pub time: f64,
    /// The graph observed in the window.
    pub graph: Graph,
}

/// A time-ordered sequence of snapshots — the input of the discrete-time
/// models (EvolveGCN, ASTGNN, MolDGNN).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotSequence {
    snapshots: Vec<Snapshot>,
}

impl SnapshotSequence {
    /// Creates a sequence, validating time order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnsortedEvents`] when snapshot times are not
    /// non-decreasing.
    pub fn new(snapshots: Vec<Snapshot>) -> Result<Self> {
        for i in 1..snapshots.len() {
            if snapshots[i].time < snapshots[i - 1].time {
                return Err(GraphError::UnsortedEvents { index: i });
            }
        }
        Ok(SnapshotSequence { snapshots })
    }

    /// The snapshots in time order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Iterates over snapshots.
    pub fn iter(&self) -> std::slice::Iter<'_, Snapshot> {
        self.snapshots.iter()
    }

    /// Mean edge count across snapshots (the paper compares Reddit's
    /// larger average snapshot against Wikipedia's).
    pub fn mean_edges(&self) -> f64 {
        if self.snapshots.is_empty() {
            return 0.0;
        }
        self.snapshots
            .iter()
            .map(|s| s.graph.n_edges() as f64)
            .sum::<f64>()
            / self.snapshots.len() as f64
    }
}

impl<'a> IntoIterator for &'a SnapshotSequence {
    type Item = &'a Snapshot;
    type IntoIter = std::slice::Iter<'a, Snapshot>;
    fn into_iter(self) -> Self::IntoIter {
        self.snapshots.iter()
    }
}

/// Slices an event stream into overlapping sliding-window snapshots:
/// windows of length `window` advancing by `stride`. `stride < window`
/// yields the overlap EvolveGCN's preprocessing uses to smooth topology
/// change between steps.
///
/// # Errors
///
/// Returns [`GraphError::InvalidWindow`] when `window` or `stride` is not
/// positive, or [`GraphError::EmptyInput`] when the stream has no events.
pub fn snapshots_from_events(
    stream: &EventStream,
    window: f64,
    stride: f64,
) -> Result<SnapshotSequence> {
    // NaN must be rejected too, hence the explicit check alongside `<=`.
    if window.is_nan() || stride.is_nan() || window <= 0.0 || stride <= 0.0 {
        return Err(GraphError::InvalidWindow {
            reason: "window and stride must be positive",
        });
    }
    if stream.is_empty() {
        return Err(GraphError::EmptyInput {
            op: "snapshots_from_events",
        });
    }
    let end = stream.end_time();
    let mut snapshots = Vec::new();
    let mut t = 0.0f64;
    loop {
        let events = stream.events_in(t, t + window);
        let edges: Vec<(usize, usize)> = events.iter().map(|e| (e.src, e.dst)).collect();
        let graph = Graph::from_edges(stream.n_nodes(), &edges)?;
        snapshots.push(Snapshot { time: t, graph });
        t += stride;
        if t > end {
            break;
        }
    }
    SnapshotSequence::new(snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TemporalEvent;

    fn stream() -> EventStream {
        let events = (0..10)
            .map(|i| TemporalEvent {
                src: i % 4,
                dst: (i + 1) % 4,
                time: i as f64,
                feature_idx: i,
            })
            .collect();
        EventStream::new(4, events).unwrap()
    }

    #[test]
    fn windows_partition_when_stride_equals_window() {
        let seq = snapshots_from_events(&stream(), 3.0, 3.0).unwrap();
        let total: usize = seq.iter().map(|s| s.graph.n_edges()).sum();
        assert_eq!(total, 10);
        assert!(seq.len() >= 4);
    }

    #[test]
    fn overlapping_windows_duplicate_edges() {
        let disjoint = snapshots_from_events(&stream(), 4.0, 4.0).unwrap();
        let overlapping = snapshots_from_events(&stream(), 4.0, 2.0).unwrap();
        let sum_d: usize = disjoint.iter().map(|s| s.graph.n_edges()).sum();
        let sum_o: usize = overlapping.iter().map(|s| s.graph.n_edges()).sum();
        assert!(sum_o > sum_d);
    }

    #[test]
    fn snapshot_times_are_sorted() {
        let seq = snapshots_from_events(&stream(), 2.0, 2.0).unwrap();
        let times: Vec<f64> = seq.iter().map(|s| s.time).collect();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(times, sorted);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            snapshots_from_events(&stream(), 0.0, 1.0),
            Err(GraphError::InvalidWindow { .. })
        ));
        let empty = EventStream::new(2, vec![]).unwrap();
        assert!(matches!(
            snapshots_from_events(&empty, 1.0, 1.0),
            Err(GraphError::EmptyInput { .. })
        ));
    }

    #[test]
    fn sequence_validates_order() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let bad = vec![
            Snapshot {
                time: 2.0,
                graph: g.clone(),
            },
            Snapshot {
                time: 1.0,
                graph: g,
            },
        ];
        assert!(matches!(
            SnapshotSequence::new(bad),
            Err(GraphError::UnsortedEvents { index: 1 })
        ));
    }

    #[test]
    fn mean_edges_reflects_density() {
        let seq = snapshots_from_events(&stream(), 5.0, 5.0).unwrap();
        assert!(seq.mean_edges() > 0.0);
        assert_eq!(SnapshotSequence::default().mean_edges(), 0.0);
    }
}
