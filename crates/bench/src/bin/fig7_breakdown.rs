//! Regenerates Figure 7: the per-module inference breakdown of each
//! DGNN, with the paper's parameter variants:
//!
//! * TGN — batch sizes 512 and 64k (panel a);
//! * MolDGNN — batch sizes 32/512/8192 (panel b);
//! * ASTGNN — batch sizes 4/8/16 (panel c);
//! * JODIE — t-batched window (panel d);
//! * TGAT — k ∈ {20, 100} × bs ∈ {200, 4000} (panels e/g);
//! * DyRep / LDG — default configs (panels f/h);
//! * EvolveGCN-O/-H on Wikipedia- and Reddit-derived snapshots (i/j).
//!
//! Usage: `fig7_breakdown [--scale ...] [--model <name>]`

use dgnn_bench::{build_model, default_config, flag_value, measure, parse_opts};
use dgnn_device::ExecMode;
use dgnn_models::InferenceConfig;

fn show(name: &str, scale: dgnn_datasets::Scale, seed: u64, cfg: &InferenceConfig, label: &str) {
    let mut m = build_model(name, scale, seed);
    let r = measure(m.as_mut(), ExecMode::Gpu, cfg);
    println!(
        "{}",
        r.profile.breakdown.to_table(&format!(
            "Fig 7 — {label} (total {:.1} ms, {} iterations)",
            r.profile.inference_time.as_millis_f64(),
            r.summary.iterations
        ))
    );
}

fn main() {
    let opts = parse_opts();
    let only = flag_value(&opts.rest, "--model");
    let want = |m: &str| only.is_none() || only == Some(m);
    let (scale, seed) = (opts.scale, opts.seed);

    if want("tgn") {
        for bs in [512usize, 65_536] {
            let cfg = default_config("tgn").with_batch_size(bs).with_max_units(2);
            show("tgn", scale, seed, &cfg, &format!("TGN wikipedia bs={bs}"));
        }
    }
    if want("moldgnn") {
        for bs in [32usize, 512, 8_192] {
            let cfg = default_config("moldgnn").with_batch_size(bs);
            show(
                "moldgnn",
                scale,
                seed,
                &cfg,
                &format!("MolDGNN iso17 bs={bs}"),
            );
        }
    }
    if want("astgnn") {
        for bs in [4usize, 8, 16] {
            let cfg = default_config("astgnn").with_batch_size(bs);
            show("astgnn", scale, seed, &cfg, &format!("ASTGNN pems bs={bs}"));
        }
    }
    if want("jodie") {
        show(
            "jodie",
            scale,
            seed,
            &default_config("jodie"),
            "JODIE wikipedia (t-batch)",
        );
    }
    if want("tgat") {
        for k in [20usize, 100] {
            for bs in [200usize, 4_000] {
                let cfg = default_config("tgat")
                    .with_batch_size(bs)
                    .with_neighbors(k)
                    .with_max_units(2);
                show(
                    "tgat",
                    scale,
                    seed,
                    &cfg,
                    &format!("TGAT wikipedia k={k} bs={bs}"),
                );
            }
        }
    }
    if want("dyrep") {
        show(
            "dyrep",
            scale,
            seed,
            &default_config("dyrep"),
            "DyRep social-evolution",
        );
    }
    if want("ldg") {
        show(
            "ldg_mlp",
            scale,
            seed,
            &default_config("ldg_mlp"),
            "LDG (MLP encoder) github",
        );
        show(
            "ldg_bilinear",
            scale,
            seed,
            &default_config("ldg_bilinear"),
            "LDG (bilinear) github",
        );
    }
    if want("evolvegcn_o") || want("evolvegcn") {
        for ds in ["wikipedia", "reddit"] {
            let name = format!("evolvegcn_o@{ds}");
            show(
                &name,
                scale,
                seed,
                &default_config("evolvegcn_o"),
                &format!("EvolveGCN-O {ds}"),
            );
        }
    }
    if want("evolvegcn_h") || want("evolvegcn") {
        for ds in ["wikipedia", "reddit"] {
            let name = format!("evolvegcn_h@{ds}");
            show(
                &name,
                scale,
                seed,
                &default_config("evolvegcn_h"),
                &format!("EvolveGCN-H {ds}"),
            );
        }
    }
}
