//! Cross-generator property-style tests: invariants every synthetic
//! dataset must satisfy regardless of seed. Driven by a deterministic
//! seed sweep so the suite builds offline.

use dgnn_datasets::{
    bitcoin_alpha, github, iso17, lastfm, pems, reddit, sbm, social_evolution, wikipedia, Scale,
    TemporalDataset,
};
use dgnn_tensor::TensorRng;

type TemporalGenerator = fn(Scale, u64) -> TemporalDataset;

fn temporal_generators() -> Vec<(&'static str, TemporalGenerator)> {
    vec![
        ("wikipedia", wikipedia),
        ("reddit", reddit),
        ("lastfm", lastfm),
        ("social_evolution", social_evolution),
        ("github", github),
    ]
}

fn seeds(n: usize) -> Vec<u64> {
    let mut rng = TensorRng::seed(0xda7a);
    (0..n).map(|_| rng.next_u64()).collect()
}

#[test]
fn temporal_datasets_are_internally_consistent() {
    for seed in seeds(8) {
        for (name, gen) in temporal_generators() {
            let d = gen(Scale::Tiny, seed);
            assert_eq!(d.name, name);
            // Feature tables line up with the stream.
            assert_eq!(d.node_features.dims()[0], d.stream.n_nodes());
            assert_eq!(d.edge_features.dims()[0], d.stream.len());
            assert!(d.node_features.all_finite(), "{name}");
            assert!(d.edge_features.all_finite(), "{name}");
            // Feature indices address the edge-feature table.
            for e in d.stream.events() {
                assert!(e.feature_idx < d.stream.len(), "{name}");
            }
            // Timestamps strictly ordered enough for batching.
            let times: Vec<f64> = d.stream.events().iter().map(|e| e.time).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{name}");
        }
    }
}

#[test]
fn snapshot_datasets_stay_in_node_bounds() {
    for seed in seeds(8) {
        for d in [bitcoin_alpha(Scale::Tiny, seed), sbm(Scale::Tiny, seed)] {
            let n = d.n_nodes();
            for snap in d.snapshots.iter() {
                assert_eq!(snap.graph.n_nodes(), n);
                for (s, t, w) in snap.graph.iter_edges() {
                    assert!(s < n && t < n);
                    assert!(w.is_finite());
                }
            }
        }
    }
}

#[test]
fn pems_signal_is_finite_for_any_seed() {
    for seed in seeds(8) {
        let d = pems(Scale::Tiny, seed);
        assert!(d.signal.all_finite());
        assert_eq!(d.sensor_graph.n_nodes(), d.n_sensors());
    }
}

#[test]
fn iso17_frames_are_uniform() {
    for seed in seeds(8) {
        let d = iso17(Scale::Tiny, seed);
        let frames = d.frames_per_molecule();
        for mol in &d.molecules {
            assert_eq!(mol.len(), frames);
            for snap in mol.iter() {
                assert_eq!(snap.graph.n_nodes(), d.n_atoms);
            }
        }
        assert_eq!(d.positions.dims()[0], d.n_molecules() * frames);
    }
}

#[test]
fn generators_never_collide_across_seeds() {
    for seed in 0u64..8 {
        let a = wikipedia(Scale::Tiny, seed);
        let b = wikipedia(Scale::Tiny, seed + 1);
        assert_ne!(a.stream, b.stream);
    }
}
