//! # dgnn-graph
//!
//! The dynamic-graph substrate: everything the eight DGNNs consume.
//!
//! The paper's taxonomy (its Table 1) splits dynamic graph neural networks
//! into *discrete-time* models that consume a sequence of graph snapshots
//! ([`SnapshotSequence`]) and *continuous-time* models that consume a
//! stream of timestamped interaction events ([`EventStream`]). This crate
//! provides both representations plus the preprocessing machinery whose
//! CPU cost the paper identifies as a first-class bottleneck:
//!
//! * [`TemporalAdjacency`] — a flat CSR index of per-node, time-sorted
//!   neighbor history with bisection lookup, and [`NeighborSampler`]
//!   implementing TGAT-style temporal neighbor sampling (most-recent and
//!   uniform) with deterministic parallel batch APIs (see [`par`]);
//! * [`StreamingAdjacency`] — the appendable two-tier variant (immutable
//!   CSR base + delta log with deterministic threshold compaction) for
//!   queries racing live ingestion; its borrowed [`StreamingView`]
//!   snapshot and the frozen CSR both implement [`TemporalView`], the
//!   read interface every sampler method is written against;
//! * [`TBatcher`] — JODIE's t-batch parallelization algorithm, and
//!   [`WindowBatcher`] — the arrival-time micro-batching rule the
//!   `dgnn-serve` admission queue applies per model;
//! * [`snapshots_from_events`] — sliding-window snapshot extraction for
//!   discrete-time models.
//!
//! Sampling routines return a [`sampler::SampleCost`] describing the
//! comparisons and irregular bytes they touched, so the device layer can
//! price the work the way the paper observed it (irregular memory access
//! on the CPU).

#![forbid(unsafe_code)]

mod delta;
mod error;
mod event;
mod graph;
pub mod partition;
pub mod sampler;

/// Deterministic thread fan-out, re-exported from `dgnn-tensor` where the
/// cache-blocked parallel kernels live (this crate sits above it in the
/// dependency graph and shares the same `RAYON_NUM_THREADS` discipline).
pub use dgnn_tensor::par;
mod snapshot;
mod tbatch;

pub use delta::{AppendReceipt, IngestCost, StreamingAdjacency, StreamingView};
pub use error::GraphError;
pub use event::{EventStream, TemporalEvent};
pub use graph::Graph;
pub use partition::{contiguous_ranges, greedy_edge_cut, Partition};
pub use sampler::{
    NeighborSampler, SampleCost, SampleStrategy, SampledNeighbor, TemporalAdjacency, TemporalView,
};
pub use snapshot::{snapshots_from_events, Snapshot, SnapshotSequence};
pub use tbatch::{MicroBatch, TBatch, TBatcher, WindowBatcher};

/// Node identifier (dense index into the node table).
pub type NodeId = usize;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
