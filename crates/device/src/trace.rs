//! Provenance tracing: the causal record behind the timeline sanitizer.
//!
//! A recorded [`crate::Timeline`] tells *when* things happened; it does
//! not tell *why they were allowed to*. A Compute-lane kernel that reads
//! a tensor whose H2D copy was never event-ordered before it produces a
//! perfectly plausible-looking timeline — one whose overlap wins are
//! fiction. Real stacks catch this class of bug with
//! `compute-sanitizer`/TSAN; the simulated platform needs the same
//! evidence trail.
//!
//! [`ExecTrace`] is that trail: an append-only program-order log of
//! every causally relevant action the [`crate::Executor`] and
//! [`crate::Dispatcher`] take — tensor accesses with their lane,
//! residence crossings (immediate and coalesce-staged), coalesced
//! flushes, priced transfers, stream forks/joins and event
//! record/waits. The `dgnn-analysis` crate replays the log with vector
//! clocks to reconstruct the happens-before DAG and check the hazard
//! ruleset against it.
//!
//! Recording is off by default and costs one branch per action when off
//! ([`crate::Executor::enable_tracing`] switches it on); no existing
//! timeline, pricing, or scope behavior changes either way.

use crate::cache::TensorClass;
use crate::event::{Place, TransferDir};
use crate::stream::StreamId;
use crate::time::DurationNs;

/// Identity of a [`crate::DeviceTensor`]'s simulated buffer.
///
/// Unique per constructed tensor within a process; clones share the id
/// (they alias the same logical buffer). Ids are compared for equality
/// only — their numeric values are allocation-order artifacts.
pub type TensorId = u64;

/// How a traced tensor access touches the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Consumed as a kernel argument (staged via `ensure_resident`).
    Arg,
    /// Defined on the compute device without a transfer (`adopt`).
    Adopt,
    /// Read back to the host (`download`), invalidating the device copy.
    Download,
}

/// One entry of the causal log, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A tensor access on the issuing lane (`None` = the serial clock).
    /// `place` is the compute device the access targets; `at_event` is
    /// the timeline length when the access was logged (the index the
    /// next priced event will take), tying diagnostics back to the
    /// trace.
    Access {
        /// Buffer identity.
        tensor: TensorId,
        /// Kind of access.
        kind: AccessKind,
        /// Issuing lane (`None` = serial clock).
        lane: Option<StreamId>,
        /// Device the access targets.
        place: Place,
        /// Timeline length at log time.
        at_event: usize,
    },
    /// A residence crossing intent from the dispatcher. `staged` means
    /// the bytes went into the coalescing accumulator instead of being
    /// priced immediately; a later [`TraceRecord::Flush`] must drain
    /// them.
    Crossing {
        /// Buffer identity, when the crossing came from a tracked
        /// tensor (`None` for raw byte transfers).
        tensor: Option<TensorId>,
        /// Copy direction.
        dir: TransferDir,
        /// Bytes crossing.
        bytes: u64,
        /// Issuing lane.
        lane: Option<StreamId>,
        /// Deferred into the coalescing accumulator.
        staged: bool,
        /// Timeline length at log time.
        at_event: usize,
    },
    /// A coalesced flush pricing `bytes` staged bytes as one merged
    /// transaction in `dir`.
    Flush {
        /// Copy direction.
        dir: TransferDir,
        /// Merged byte count.
        bytes: u64,
        /// Issuing lane.
        lane: Option<StreamId>,
        /// Timeline length at log time (the merged transfer's index).
        at_event: usize,
    },
    /// A priced PCIe transfer (the timeline's `Transfer` event twin).
    Priced {
        /// Copy direction.
        dir: TransferDir,
        /// Bytes priced.
        bytes: u64,
        /// Issuing lane.
        lane: Option<StreamId>,
        /// Timeline index of the priced event.
        event: usize,
    },
    /// Rows served from the device-resident feature cache instead of
    /// crossing PCIe. One aggregated record per fetch batch (not per
    /// row) to bound trace size. These bytes are *legitimately
    /// unpriced*: they deliberately appear in no crossing, flush or
    /// priced ledger, and RULE5 byte conservation must not flag them.
    CacheHit {
        /// Class of the cached rows.
        class: TensorClass,
        /// Rows served from the cache in this fetch.
        rows: u64,
        /// Bytes that skipped the H2D crossing.
        bytes: u64,
        /// Issuing lane.
        lane: Option<StreamId>,
        /// Timeline length at log time.
        at_event: usize,
    },
    /// A device buffer explicitly released; later device accesses
    /// without a re-upload are use-after-release hazards.
    Release {
        /// Buffer identity.
        tensor: TensorId,
        /// Issuing lane.
        lane: Option<StreamId>,
        /// Timeline length at log time.
        at_event: usize,
    },
    /// The serial clock forked into the three lanes.
    Fork {
        /// Fork origin on the serial clock.
        at: DurationNs,
    },
    /// The lanes folded back into the serial clock.
    Join {
        /// The joined serial clock.
        at: DurationNs,
        /// Per-lane clocks at join: three entries per forked device
        /// (slot `device * 3 + lane`), in [`StreamId::ALL`] lane order
        /// (`Host`, `Copy`, `Compute`). Single-device forks record
        /// exactly three.
        lane_clocks: Vec<DurationNs>,
    },
    /// `record_event`: `lane`'s clock captured as waitable event
    /// `event` (index within the active fork).
    EventRecord {
        /// Event index within the active fork.
        event: usize,
        /// Recording lane.
        lane: StreamId,
        /// Captured timestamp.
        at: DurationNs,
    },
    /// `wait_event`: `lane` ordered after recorded event `event`.
    EventWait {
        /// Event index within the active fork.
        event: usize,
        /// Waiting lane.
        lane: StreamId,
    },
    /// One event appended to a streaming graph store (delta-log CSR).
    /// The appended region becomes readable once the Host-lane append
    /// work completes at `visible_at`; a later sample over a prefix
    /// containing `event` must be ordered at or after that instant.
    GraphAppend {
        /// Identity of the streaming store (its session-unique id).
        store: u64,
        /// Global index of the ingested event (dense, in-order).
        event: usize,
        /// Bit pattern of the event's `f64` timestamp — the ingest
        /// watermark, which must be monotone across appends.
        time_bits: u64,
        /// Session-clock instant the append work completed (the event
        /// becomes visible to samplers).
        visible_at: DurationNs,
        /// Issuing lane (`None` = serial clock).
        lane: Option<StreamId>,
        /// Timeline length at log time.
        at_event: usize,
    },
    /// A sampling read over the first `visible` events of a streaming
    /// graph store, issued at session-clock instant `at`. Every append
    /// inside the visible prefix must happen-before this read.
    GraphSample {
        /// Identity of the streaming store.
        store: u64,
        /// Events the sampled snapshot exposes (prefix length).
        visible: usize,
        /// Session-clock instant the read began.
        at: DurationNs,
        /// Issuing lane (`None` = serial clock).
        lane: Option<StreamId>,
        /// Timeline length at log time.
        at_event: usize,
    },
    /// The executor's current device changed: subsequent lane-tagged
    /// records and events target `device` until the next switch.
    DeviceSwitch {
        /// The newly current GPU.
        device: usize,
    },
    /// A cross-device fetch intent from the dispatcher: `bytes` owned by
    /// `src` are needed on `dst`. Every such crossing must be priced on
    /// exactly one interconnect edge by a matching
    /// [`TraceRecord::PeerPriced`] (RULE8 conservation).
    PeerCrossing {
        /// Device that owns the bytes.
        src: usize,
        /// Device that needs them.
        dst: usize,
        /// Bytes crossing.
        bytes: u64,
        /// Issuing lane.
        lane: Option<StreamId>,
        /// Timeline length at log time.
        at_event: usize,
    },
    /// A priced cross-device transfer (the timeline's `PeerTransfer`
    /// event twin). `via_host` records the route: a direct peer edge, or
    /// a host-staged bounce over both devices' PCIe links.
    PeerPriced {
        /// Source device.
        src: usize,
        /// Destination device.
        dst: usize,
        /// Bytes priced.
        bytes: u64,
        /// Whether the payload bounced through host memory.
        via_host: bool,
        /// Issuing lane.
        lane: Option<StreamId>,
        /// Timeline index of the priced event.
        event: usize,
    },
}

/// The append-only causal log. Obtain one live from
/// [`crate::Executor::trace`] after [`crate::Executor::enable_tracing`],
/// or build one by hand (via [`ExecTrace::push`]) to feed the sanitizer
/// adversarial schedules.
///
/// ```
/// use dgnn_device::{ExecMode, Executor, PlatformSpec, TraceRecord, TransferDir};
///
/// let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
/// ex.enable_tracing();
/// ex.transfer(TransferDir::H2D, 4096);
/// let trace = ex.trace().expect("tracing is on");
/// // The priced transfer has a causal twin in the log.
/// assert!(trace.records().iter().any(|r| matches!(
///     r,
///     TraceRecord::Priced { dir: TransferDir::H2D, bytes: 4096, .. }
/// )));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecTrace {
    records: Vec<TraceRecord>,
}

impl ExecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ExecTrace::default()
    }

    /// Appends a record in program order. Called by the executor and
    /// dispatcher while tracing; public so tests can assemble
    /// adversarial traces the instrumented engine would never emit.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// All records, in program order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_preserves_program_order() {
        let mut t = ExecTrace::new();
        assert!(t.is_empty());
        t.push(TraceRecord::Fork {
            at: DurationNs::ZERO,
        });
        t.push(TraceRecord::EventRecord {
            event: 0,
            lane: StreamId::Copy,
            at: DurationNs::from_nanos(5),
        });
        assert_eq!(t.len(), 2);
        assert!(matches!(t.records()[0], TraceRecord::Fork { .. }));
        assert!(matches!(
            t.records()[1],
            TraceRecord::EventRecord {
                event: 0,
                lane: StreamId::Copy,
                ..
            }
        ));
    }
}
