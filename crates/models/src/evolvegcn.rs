//! EvolveGCN (Pareja et al., AAAI'20) — discrete-time model whose GCN
//! weights are *evolved* by a recurrent network.
//!
//! Per snapshot (strictly sequential — the paper's Fig 2a dependency):
//! 1. the CPU prepares the snapshot and reloads it **and** the node
//!    features onto the GPU (EvolveGCN re-ships every step rather than
//!    updating on-chip — the §4.3 data-movement bottleneck, worse on
//!    Reddit's larger snapshots than Wikipedia's),
//! 2. the RNN updates the GCN weights (`-O`: weights only; `-H`: weights
//!    plus a top-k sample of node embeddings to match dimensions),
//! 3. two (sparse) GCN layers run with the fresh weights,
//! 4. outputs return to the CPU.
//!
//! Because every kernel is tiny and gated on the previous step, GPU
//! utilization stays below 1%.

use dgnn_datasets::SnapshotDataset;
use dgnn_device::{DeviceTensor, Dispatcher, ExecMode, Executor, HostWork, StreamId, TransferDir};
use dgnn_nn::{GcnLayer, GruCell, Linear, Module};
use dgnn_tensor::{OpDescriptor, Tensor, TensorRng};

use crate::common::{
    lane_handoff, on_lane, shard_barrier, DgnnModel, DoubleBuffer, InferenceConfig, RunSummary,
    REP_CAP,
};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per node during snapshot preparation (adjacency
/// normalization, tensor conversion in interpreted code).
const PREP_NODE_OPS: u64 = 1_000;
/// Framework ops per edge during snapshot preparation.
const PREP_EDGE_OPS: u64 = 500;

/// A shard's share of a byte total (`share` in `[0, 1]`; floors).
#[expect(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    reason = "share is clamped to [0, 1], so the product is a non-negative byte count"
)]
fn share_bytes(total: u64, share: f64) -> u64 {
    (total as f64 * share) as u64
}

/// Which EvolveGCN variant to run (Fig 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvolveGcnVersion {
    /// `-O`: the RNN input is the previous GCN weights.
    O,
    /// `-H`: the RNN input is the previous weights *and* a top-k sample
    /// of node embeddings (needs the extra "top-k" module).
    H,
}

/// EvolveGCN hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolveGcnConfig {
    /// Hidden dimension of both GCN layers.
    pub hidden: usize,
    /// Variant.
    pub version: EvolveGcnVersion,
}

impl Default for EvolveGcnConfig {
    fn default() -> Self {
        EvolveGcnConfig {
            hidden: 100,
            version: EvolveGcnVersion::O,
        }
    }
}

/// The EvolveGCN model bound to a snapshot dataset.
#[derive(Debug)]
pub struct EvolveGcn {
    data: SnapshotDataset,
    cfg: EvolveGcnConfig,
    weight_rnn: GruCell,
    gcn1: GcnLayer,
    gcn2: GcnLayer,
    topk_scorer: Linear,
    evolved_weight: Tensor,
}

impl EvolveGcn {
    /// Builds EvolveGCN over a snapshot dataset.
    pub fn new(data: SnapshotDataset, cfg: EvolveGcnConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let h = cfg.hidden;
        let in_dim = data.node_dim();
        EvolveGcn {
            weight_rnn: GruCell::new(h, h, &mut rng),
            gcn1: GcnLayer::new(in_dim, h, &mut rng),
            gcn2: GcnLayer::new(h, h, &mut rng),
            topk_scorer: Linear::new(in_dim, 1, &mut rng),
            evolved_weight: rng.init(&[h, h], dgnn_tensor::Initializer::XavierUniform),
            data,
            cfg,
        }
    }

    /// The variant being run.
    pub fn version(&self) -> EvolveGcnVersion {
        self.cfg.version
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![&self.weight_rnn, &self.gcn1, &self.gcn2, &self.topk_scorer]
    }

    /// Sharded multi-GPU driver: every snapshot's node set is split by
    /// the deterministic greedy edge-cut partitioner
    /// ([`dgnn_graph::greedy_edge_cut`]); each shard reloads and runs the
    /// GCN over its own part, cut edges pull the remote endpoint's
    /// feature rows as peer transfers, and the tiny `h×h` weight
    /// evolution is *replicated* on every device (cheaper than
    /// broadcasting the evolved matrix each step, and functionally
    /// identical since every shard evolves from the same input).
    fn infer_sharded(
        &mut self,
        ex: &mut Executor,
        cfg: &InferenceConfig,
        shards: usize,
    ) -> Result<RunSummary> {
        let h = self.cfg.hidden;
        let n = self.data.n_nodes();
        let d_in = self.data.node_dim();
        let feat_bytes = (n * d_in * 4) as u64;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let n_steps = self.data.snapshots.len().min(cfg.max_units.max(1));
        let rep_n = n.min(REP_CAP);
        let rep_feats = self
            .data
            .node_features
            .gather_rows(&(0..rep_n).collect::<Vec<_>>())?;

        cfg.apply_device_options(ex);

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced());
            dx.fork_streams_multi(shards);
            for step in 0..n_steps {
                let snap = &self.data.snapshots.snapshots()[step];
                let edges: Vec<(usize, usize)> =
                    snap.graph.iter_edges().map(|(u, v, _)| (u, v)).collect();
                let part = dgnn_graph::greedy_edge_cut(n, &edges, shards);
                // Per-shard tallies: owned nodes, owned edges (an edge
                // belongs to its source's part) and the cut matrix —
                // cut[s][o] edges need part o's endpoint rows on s.
                let mut n_s = vec![0usize; shards];
                for &p in &part.part {
                    n_s[p] += 1;
                }
                let mut e_s = vec![0u64; shards];
                let mut cut = vec![vec![0u64; shards]; shards];
                for &(u, v) in &edges {
                    let pu = part.part[u];
                    e_s[pu] += 1;
                    let pv = part.part[v];
                    if pv != pu {
                        cut[pu][pv] += 1;
                    }
                }
                let nnz = edges.len().max(1) as u64;

                // Representative dense adjacency over the leading nodes
                // (shared across shards; each adopts it at its own scale).
                let rep_edges: Vec<(usize, usize, f32)> = snap
                    .graph
                    .iter_edges()
                    .filter(|&(s, d, _)| s < rep_n && d < rep_n)
                    .collect();
                let rep_graph = dgnn_graph::Graph::from_weighted_edges(rep_n, &rep_edges)?;
                let rep_adj_data =
                    Tensor::from_vec(rep_graph.normalized_adjacency(), &[rep_n, rep_n])?;

                let mut next_weight: Option<Tensor> = None;
                for s in 0..shards {
                    let shard: Result<()> = dx.on_device(s, |dx| {
                        if n_s[s] == 0 {
                            return Ok(());
                        }
                        let shard_scale = n_s[s] as f64 / rep_n as f64;
                        let node_share = n_s[s] as f64 / n as f64;
                        let edge_share = e_s[s] as f64 / nnz as f64;

                        // 1. Shard-local snapshot prep + reload of the
                        // part's topology and feature rows.
                        dx.on_stream(StreamId::Host, |dx| {
                            dx.scope("snapshot_prep", |dx| {
                                dx.host(HostWork {
                                    label: "prepare_snapshot",
                                    ops: n_s[s] as u64 * PREP_NODE_OPS + e_s[s] * PREP_EDGE_OPS,
                                    seq_bytes: share_bytes(feat_bytes, node_share),
                                    irregular_bytes: share_bytes(snap.graph.byte_len(), edge_share),
                                    parallelism: 1,
                                });
                            })
                        });
                        lane_handoff(dx, true, StreamId::Host, StreamId::Copy);
                        dx.on_stream(StreamId::Copy, |dx| {
                            dx.scope("memcpy_h2d", |dx| {
                                let edge_feat_bytes = e_s[s] * (d_in * 4) as u64;
                                for bytes in [
                                    share_bytes(snap.graph.byte_len(), edge_share),
                                    share_bytes(feat_bytes, node_share),
                                    edge_feat_bytes,
                                ] {
                                    dx.transfer(TransferDir::H2D, bytes);
                                }
                                // Cut edges pull the remote endpoint's
                                // input-feature and hidden rows from their
                                // owning device (both GCN layers read them).
                                for (o, &cut_rows) in cut[s].iter().enumerate() {
                                    if o != s && cut_rows > 0 {
                                        dx.peer_transfer(o, cut_rows * ((d_in + h) * 4) as u64);
                                    }
                                }
                                dx.flush_transfers();
                            })
                        });
                        lane_handoff(dx, true, StreamId::Copy, StreamId::Compute);

                        // 2. Replicated weight evolution (+ shard-local
                        // top-k scoring for -H).
                        if self.cfg.version == EvolveGcnVersion::H {
                            checksum += dx.on_stream(StreamId::Compute, |dx| {
                                dx.scope("topk", |dx| -> Result<f32> {
                                    let feats = dx.adopt(rep_feats.clone(), shard_scale);
                                    let scores = self.topk_scorer.forward(dx, &feats)?;
                                    dx.charge(OpDescriptor::sort("topk_sort", n_s[s]), 1.0);
                                    dx.charge(OpDescriptor::gather("topk_gather", h, h), 1.0);
                                    let logn = 64 - (n_s[s].max(2) as u64).leading_zeros() as u64;
                                    dx.host(HostWork::irregular(
                                        "topk_select",
                                        2 * n_s[s] as u64 * logn,
                                        (n_s[s] * 4) as u64,
                                    ));
                                    Ok(scores.data().sum() * 1e-3)
                                })
                            })?;
                        }
                        let evolved = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("rnn", |dx| -> Result<Tensor> {
                                let w = dx.adopt(self.evolved_weight.clone(), 1.0);
                                let evolved = self.weight_rnn.forward(dx, &w, &w)?;
                                Ok(evolved.data().clone())
                            })
                        })?;

                        // 3. Two GCN layers over the shard's part with the
                        // freshly evolved weights.
                        let emb = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("gnn", |dx| -> Result<DeviceTensor> {
                                let rep_adj = dx.adopt(rep_adj_data.clone(), shard_scale);
                                let x = dx.adopt(rep_feats.clone(), shard_scale);
                                let h1 = self.gcn1.forward(dx, &rep_adj, &x)?;
                                self.gcn2
                                    .forward_with_weight(dx, &rep_adj, &h1, &evolved)
                                    .map_err(Into::into)
                            })
                        })?;
                        checksum += emb.data().sum() * 1e-3;
                        next_weight = Some(evolved);

                        // 4. The part's embeddings back to the CPU.
                        let out = dx.adopt(Tensor::zeros(&[rep_n, h]), shard_scale);
                        lane_handoff(dx, true, StreamId::Compute, StreamId::Copy);
                        dx.on_stream(StreamId::Copy, |dx| {
                            dx.scope("memcpy_d2h", |dx| {
                                dx.download(&out);
                                dx.flush_transfers();
                            })
                        });
                        Ok(())
                    });
                    shard?;
                }
                // Every shard evolved the same matrix from the same
                // input; commit it once after the fan-out.
                if let Some(w) = next_weight {
                    self.evolved_weight = w;
                }
                shard_barrier(&mut dx, shards);
                iterations += 1;
            }
            dx.join_streams();
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

impl DgnnModel for EvolveGcn {
    fn name(&self) -> &'static str {
        match self.cfg.version {
            EvolveGcnVersion::O => "evolvegcn_o",
            EvolveGcnVersion::H => "evolvegcn_h",
        }
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "evolvegcn")
            .expect("evolvegcn registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum::<u64>() + self.evolved_weight.byte_len()
    }

    fn param_tensors(&self) -> u64 {
        self.modules()
            .iter()
            .map(|m| m.param_tensor_count())
            .sum::<u64>()
            + 1
    }

    fn activation_bytes(&self, _cfg: &InferenceConfig) -> u64 {
        (self.data.n_nodes() * self.cfg.hidden * 4 * 2) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let shards = cfg.effective_shards(ex);
        if shards > 1 {
            return self.infer_sharded(ex, cfg, shards);
        }
        let h = self.cfg.hidden;
        let n = self.data.n_nodes();
        let d_in = self.data.node_dim();
        let feat_bytes = (n * d_in * 4) as u64;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let n_steps = self.data.snapshots.len().min(cfg.max_units.max(1));
        // Representative functional sub-graph: the first REP_CAP nodes
        // stand in for the full snapshot; the node-count scale prices
        // the rest.
        let rep_n = n.min(REP_CAP);
        let node_scale = n as f64 / rep_n as f64;
        let rep_feats = self
            .data
            .node_features
            .gather_rows(&(0..rep_n).collect::<Vec<_>>())?;

        let gpu = ex.mode() == ExecMode::Gpu;
        let overlap = cfg.pipeline_overlap && gpu;
        let granular = cfg.granular_transfers() && gpu;

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced() && gpu);
            if overlap {
                dx.fork_streams();
            }
            let mut staging = DoubleBuffer::new();
            for step in 0..n_steps {
                let snap = &self.data.snapshots.snapshots()[step];
                let nnz = snap.graph.n_edges();

                // 1. Snapshot preparation (CPU) and full reload to GPU.
                // Pipelined runs prefetch snapshot i+1 on the host lane
                // while snapshot i's (strictly sequential) kernels run.
                staging.acquire(&mut dx, overlap, step, StreamId::Host);
                on_lane(&mut dx, overlap, StreamId::Host, |dx| {
                    dx.scope("snapshot_prep", |dx| {
                        dx.host(HostWork {
                            label: "prepare_snapshot",
                            ops: n as u64 * PREP_NODE_OPS + nnz as u64 * PREP_EDGE_OPS,
                            seq_bytes: feat_bytes,
                            irregular_bytes: snap.graph.byte_len(),
                            parallelism: 1,
                        });
                    })
                });
                // CSR topology + node features + per-edge features are
                // re-shipped every snapshot; Reddit's denser snapshots
                // move proportionally more (Fig 7i/j). Granular modes
                // price the three constituents individually.
                let edge_feat_bytes = (nnz * d_in * 4) as u64;
                let reload_bytes = snap.graph.byte_len() + feat_bytes + edge_feat_bytes;
                lane_handoff(&mut dx, overlap, StreamId::Host, StreamId::Copy);
                on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                    dx.scope("memcpy_h2d", |dx| {
                        if granular {
                            for bytes in [snap.graph.byte_len(), feat_bytes, edge_feat_bytes] {
                                dx.transfer(TransferDir::H2D, bytes);
                            }
                            dx.flush_transfers();
                        } else {
                            let reload = DeviceTensor::host_scaled(
                                Tensor::zeros(&[1, 1]),
                                reload_bytes as f64 / 4.0,
                            );
                            dx.ensure_resident(&reload);
                        }
                    })
                });
                staging.uploaded(&mut dx, overlap);
                lane_handoff(&mut dx, overlap, StreamId::Copy, StreamId::Compute);

                // Representative dense adjacency over the leading nodes.
                let rep_edges: Vec<(usize, usize, f32)> = snap
                    .graph
                    .iter_edges()
                    .filter(|&(s, d, _)| s < rep_n && d < rep_n)
                    .collect();
                let rep_graph = dgnn_graph::Graph::from_weighted_edges(rep_n, &rep_edges)?;
                let rep_adj = dx.adopt(
                    Tensor::from_vec(rep_graph.normalized_adjacency(), &[rep_n, rep_n])?,
                    node_scale,
                );

                // 2. Weight evolution (RNN), plus top-k for -H.
                if self.cfg.version == EvolveGcnVersion::H {
                    checksum += on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                        dx.scope("topk", |dx| -> Result<f32> {
                            // Score all nodes with a fully-connected layer:
                            // the rep rows run functionally, the node-count
                            // scale prices the full snapshot.
                            let feats = dx.adopt(rep_feats.clone(), node_scale);
                            let scores = self.topk_scorer.forward(dx, &feats)?;
                            // Sort and gather have no functional counterpart
                            // at rep size — charge them directly.
                            dx.charge(OpDescriptor::sort("topk_sort", n), 1.0);
                            dx.charge(OpDescriptor::gather("topk_gather", h, h), 1.0);
                            // Scores come back to the host for the index
                            // selection, an interpreted partial sort.
                            let logn = 64 - (n.max(2) as u64).leading_zeros() as u64;
                            dx.host(HostWork::irregular(
                                "topk_select",
                                2 * n as u64 * logn,
                                (n * 4) as u64,
                            ));
                            Ok(scores.data().sum() * 1e-3)
                        })
                    })?;
                }
                let new_weight = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("rnn", |dx| -> Result<Tensor> {
                        // The GRU treats the h×h weight matrix as h rows of
                        // dimension h — one functional step through the
                        // dispatcher both prices and computes the evolution.
                        let w = dx.adopt(self.evolved_weight.clone(), 1.0);
                        let evolved = self.weight_rnn.forward(dx, &w, &w)?;
                        Ok(evolved.data().clone())
                    })
                })?;
                self.evolved_weight = new_weight;

                // 3. Two GCN layers with the evolved weights: propagate
                // (A·X), transform (·W), ReLU — priced at the full node
                // count through the adjacency's scale.
                let emb = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("gnn", |dx| -> Result<DeviceTensor> {
                        let x = dx.adopt(rep_feats.clone(), node_scale);
                        let h1 = self.gcn1.forward(dx, &rep_adj, &x)?;
                        self.gcn2
                            .forward_with_weight(dx, &rep_adj, &h1, &self.evolved_weight)
                            .map_err(Into::into)
                    })
                })?;
                checksum += emb.data().sum() * 1e-3;

                // 4. Results back to the CPU.
                let out = dx.adopt(Tensor::zeros(&[rep_n, h]), node_scale);
                lane_handoff(&mut dx, overlap, StreamId::Compute, StreamId::Copy);
                on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                    dx.scope("memcpy_d2h", |dx| {
                        dx.download(&out);
                        dx.flush_transfers();
                    })
                });
                iterations += 1;
            }
            if overlap {
                dx.join_streams();
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{as_snapshots, bitcoin_alpha, wikipedia, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build(version: EvolveGcnVersion) -> EvolveGcn {
        EvolveGcn::new(
            bitcoin_alpha(Scale::Tiny, 1),
            EvolveGcnConfig {
                hidden: 100,
                version,
            },
            7,
        )
    }

    fn cfg() -> InferenceConfig {
        InferenceConfig::default().with_max_units(6)
    }

    #[test]
    fn both_versions_run() {
        for v in [EvolveGcnVersion::O, EvolveGcnVersion::H] {
            let mut m = build(v);
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg()).unwrap();
            assert_eq!(s.iterations, 6);
            assert!(s.checksum.is_finite());
        }
    }

    #[test]
    fn h_version_has_topk_module() {
        let mut m = build(EvolveGcnVersion::H);
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg()).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.breakdown.share_of("topk") > 0.0);

        let mut mo = build(EvolveGcnVersion::O);
        let mut exo = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        mo.run(&mut exo, &cfg()).unwrap();
        let po = InferenceProfile::capture(&exo, "inference");
        assert_eq!(po.breakdown.share_of("topk"), 0.0);
    }

    #[test]
    fn gpu_utilization_below_one_percent_scale() {
        // The <1% claim reproduces at realistic node counts; Tiny-scale
        // graphs are launch-bound everywhere, so test at Small scale.
        let mut m = EvolveGcn::new(
            bitcoin_alpha(Scale::Small, 1),
            EvolveGcnConfig::default(),
            7,
        );
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg()).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.utilization.busy_fraction < 0.03,
            "EvolveGCN util {}",
            p.utilization.busy_fraction
        );
    }

    #[test]
    fn weights_evolve_across_snapshots() {
        let mut m = build(EvolveGcnVersion::O);
        let before = m.evolved_weight.clone();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg()).unwrap();
        assert_ne!(before, m.evolved_weight);
    }

    #[test]
    fn reddit_style_snapshots_move_more_data_than_wikipedia() {
        let bytes = |data: dgnn_datasets::SnapshotDataset| {
            let mut m = EvolveGcn::new(data, EvolveGcnConfig::default(), 7);
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg()).unwrap();
            ex.timeline().transfer_bytes(None)
        };
        let wiki = bytes(as_snapshots(&wikipedia(Scale::Tiny, 1), 12));
        let red = bytes(as_snapshots(&dgnn_datasets::reddit(Scale::Tiny, 1), 12));
        assert!(red > wiki, "reddit {red} vs wikipedia {wiki}");
    }

    #[test]
    fn names_distinguish_versions() {
        assert_eq!(build(EvolveGcnVersion::O).name(), "evolvegcn_o");
        assert_eq!(build(EvolveGcnVersion::H).name(), "evolvegcn_h");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build(EvolveGcnVersion::H);
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg()).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_weights_evolve_identically_to_single_device() {
        // The replicated weight evolution runs from the same input on
        // every shard, so the evolved matrix after n steps must equal
        // the single-device run's bit for bit.
        let evolve = |shards: usize| {
            let mut m = build(EvolveGcnVersion::O);
            let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
            m.run(&mut ex, &cfg().with_shards(shards)).unwrap();
            m.evolved_weight.clone()
        };
        assert_eq!(evolve(1), evolve(2));
    }

    #[test]
    fn sharded_snapshot_reload_splits_and_cut_edges_cross() {
        let run = |shards: usize| {
            let mut m = build(EvolveGcnVersion::O);
            let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(4), ExecMode::Gpu);
            m.run(&mut ex, &cfg().with_shards(shards)).unwrap();
            let peer: u64 = ex
                .timeline()
                .events()
                .iter()
                .filter(|e| e.category == dgnn_device::EventCategory::PeerTransfer)
                .map(|e| e.bytes)
                .sum();
            (ex.now(), peer)
        };
        let (single, no_peer) = run(1);
        let (sharded, peer) = run(4);
        assert_eq!(no_peer, 0);
        assert!(peer > 0, "a connected snapshot has cut edges");
        assert!(
            sharded < single,
            "splitting the snapshot reload must win: {sharded:?} vs {single:?}"
        );
    }
}
