//! Warm-up accounting — Table 2 and the §4.4 ratios.

use dgnn_device::{DurationNs, EventCategory, Timeline};

use crate::tablefmt::TextTable;

/// Decomposition of a run into warm-up components and computation, in the
/// paper's Table 2 framing: *warm-up share of GPU total working time*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmupReport {
    /// Lazy CUDA context initialization (one-time).
    pub context: DurationNs,
    /// Model initialization (weight upload, allocation, stream capture).
    pub model_init: DurationNs,
    /// Per-run activation allocation.
    pub alloc: DurationNs,
    /// Kernel computation time on the GPU.
    pub computation: DurationNs,
}

impl WarmupReport {
    /// Extracts warm-up components from a timeline.
    pub fn from_timeline(timeline: &Timeline) -> Self {
        WarmupReport {
            context: timeline.category_time(|c| c == EventCategory::WarmupContext),
            model_init: timeline.category_time(|c| c == EventCategory::WarmupModelInit),
            alloc: timeline.category_time(|c| c == EventCategory::WarmupAlloc),
            computation: timeline.category_time(EventCategory::is_gpu_compute),
        }
    }

    /// Total warm-up (context + model init + allocation).
    pub fn total_warmup(&self) -> DurationNs {
        self.context + self.model_init + self.alloc
    }

    /// Per-batch warm-up as Table 2 defines it: allocation warm-up only
    /// (context and model init are one-time costs the table excludes).
    pub fn batch_warmup(&self) -> DurationNs {
        self.alloc
    }

    /// Table 2's proportion: per-batch warm-up over GPU total working
    /// time (warm-up + computation).
    pub fn batch_warmup_share(&self) -> f64 {
        let total = (self.alloc + self.computation).as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.alloc.as_nanos() as f64 / total as f64
    }

    /// §4.4's ratio: one-time warm-up versus the cost of processing one
    /// mini-batch/snapshot (`unit_time`). The paper reports 86×, 41×, 33×.
    pub fn one_time_warmup_ratio(&self, unit_time: DurationNs) -> f64 {
        if unit_time.as_nanos() == 0 {
            return f64::INFINITY;
        }
        (self.context + self.model_init).as_nanos() as f64 / unit_time.as_nanos() as f64
    }

    /// Renders one Table 2 row: `batch size | warm-up (share) |
    /// computation (share)`.
    pub fn table2_row(&self, batch_size: usize) -> Vec<String> {
        let total = self.alloc + self.computation;
        let share = |d: DurationNs| {
            if total.as_nanos() == 0 {
                0.0
            } else {
                d.as_nanos() as f64 / total.as_nanos() as f64 * 100.0
            }
        };
        vec![
            batch_size.to_string(),
            format!(
                "{:.1} ({:.0}%)",
                self.alloc.as_millis_f64(),
                share(self.alloc)
            ),
            format!(
                "{:.1} ({:.0}%)",
                self.computation.as_millis_f64(),
                share(self.computation)
            ),
        ]
    }

    /// Renders a full Table 2 for one model from per-batch-size reports.
    pub fn render_table2(model: &str, rows: &[(usize, WarmupReport)]) -> String {
        let mut t = TextTable::new(
            &format!("Table 2 — GPU warm-up overhead of {model}"),
            &["batch size", "warm-up ms (share)", "computation ms (share)"],
        );
        for (bs, r) in rows {
            t.row(&r.table2_row(*bs));
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, KernelDesc, PlatformSpec};

    fn run(alloc_bytes: u64, kernels: usize) -> WarmupReport {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.model_init(1 << 20, 10);
        ex.alloc_warmup(alloc_bytes);
        for _ in 0..kernels {
            ex.launch(KernelDesc::gemm("k", 128, 128, 128));
        }
        WarmupReport::from_timeline(ex.timeline())
    }

    #[test]
    fn components_are_positive_for_gpu_runs() {
        let r = run(1 << 20, 5);
        assert!(r.context > DurationNs::ZERO);
        assert!(r.model_init > DurationNs::ZERO);
        assert!(r.alloc > DurationNs::ZERO);
        assert!(r.computation > DurationNs::ZERO);
        assert_eq!(r.total_warmup(), r.context + r.model_init + r.alloc);
    }

    #[test]
    fn batch_warmup_share_grows_with_allocation() {
        let small = run(1 << 16, 50);
        let large = run(1 << 30, 50);
        assert!(large.batch_warmup_share() > small.batch_warmup_share());
        assert!((0.0..=1.0).contains(&large.batch_warmup_share()));
    }

    #[test]
    fn one_time_ratio_is_large_for_small_units() {
        let r = run(1 << 16, 1);
        let unit = DurationNs::from_millis(80);
        assert!(r.one_time_warmup_ratio(unit) > 30.0);
        assert!(r.one_time_warmup_ratio(DurationNs::ZERO).is_infinite());
    }

    #[test]
    fn cpu_runs_have_no_gpu_warmup() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        ex.launch(KernelDesc::gemm("k", 64, 64, 64));
        let r = WarmupReport::from_timeline(ex.timeline());
        assert_eq!(r.context, DurationNs::ZERO);
        assert_eq!(r.alloc, DurationNs::ZERO);
    }

    #[test]
    fn table2_renders_rows() {
        let rows = vec![(8, run(1 << 20, 3)), (512, run(1 << 26, 3))];
        let s = WarmupReport::render_table2("TGN", &rows);
        assert!(s.contains("TGN"));
        assert!(s.contains("512"));
        assert!(s.contains('%'));
    }
}
