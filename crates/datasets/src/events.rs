//! Unipartite event streams: Social Evolution (DyRep) and GitHub (LDG).

use dgnn_graph::{EventStream, TemporalEvent};
use dgnn_tensor::{Initializer, TensorRng};

use crate::power_law::PowerLawSampler;
use crate::scale::Scale;
use crate::types::TemporalDataset;

struct UnipartiteConfig {
    name: &'static str,
    full_nodes: usize,
    full_events: usize,
    node_dim: usize,
    edge_dim: usize,
    alpha: f64,
    /// Probability that an event repeats a recently active pair
    /// (communication recurrence in Social Evolution is very high).
    recurrence: f64,
}

fn generate(cfg: &UnipartiteConfig, scale: Scale, seed: u64) -> TemporalDataset {
    let n_nodes = scale.apply(cfg.full_nodes, 16).max(4);
    let n_events = scale.apply(cfg.full_events, 256);

    let mut rng = TensorRng::seed(seed);
    let pop = PowerLawSampler::new(n_nodes, cfg.alpha);

    let mut t = 0.0f64;
    let mut recent: Vec<(usize, usize)> = Vec::new();
    let events: Vec<TemporalEvent> = (0..n_events)
        .map(|i| {
            t += rng.uniform_f64(0.01, 1.0);
            let (src, dst) = if !recent.is_empty() && rng.chance(cfg.recurrence) {
                recent[rng.index(recent.len())]
            } else {
                let s = pop.sample(&mut rng);
                let mut d = pop.sample(&mut rng);
                if d == s {
                    d = (d + 1) % n_nodes;
                }
                (s, d)
            };
            recent.push((src, dst));
            if recent.len() > 64 {
                recent.remove(0);
            }
            TemporalEvent {
                src,
                dst,
                time: t,
                feature_idx: i,
            }
        })
        .collect();
    let stream = EventStream::new(n_nodes, events).expect("generated events are sorted");

    let mut trng = TensorRng::seed(seed ^ 0x1f123bb5);
    TemporalDataset {
        name: cfg.name,
        stream,
        node_features: trng.init(&[n_nodes, cfg.node_dim], Initializer::Normal(1.0)),
        edge_features: trng.init(&[n_events, cfg.edge_dim], Initializer::Normal(1.0)),
    }
}

/// MIT Social Evolution: 84 participants, ~2M proximity/communication
/// events with heavy pair recurrence. DyRep's evaluation dataset.
pub fn social_evolution(scale: Scale, seed: u64) -> TemporalDataset {
    generate(
        &UnipartiteConfig {
            name: "social_evolution",
            full_nodes: 84,
            full_events: 2_000_000,
            node_dim: 32,
            edge_dim: 8,
            alpha: 0.8,
            recurrence: 0.7,
        },
        scale,
        seed,
    )
}

/// GitHub collaboration events (gharchive): ~1k active users,
/// follow/star/fork events. LDG's evaluation dataset.
pub fn github(scale: Scale, seed: u64) -> TemporalDataset {
    generate(
        &UnipartiteConfig {
            name: "github",
            full_nodes: 1_000,
            full_events: 500_000,
            node_dim: 64,
            edge_dim: 8,
            alpha: 1.2,
            recurrence: 0.3,
        },
        scale,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_evolution_is_small_and_dense() {
        let d = social_evolution(Scale::Tiny, 1);
        assert_eq!(d.name, "social_evolution");
        assert!(d.stream.n_nodes() <= 84);
        assert!(d.stream.len() > 10 * d.stream.n_nodes());
    }

    #[test]
    fn github_has_power_law_activity() {
        let d = github(Scale::Tiny, 2);
        let mut counts = vec![0usize; d.stream.n_nodes()];
        for e in d.stream.events() {
            counts[e.src] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] > counts[counts.len() / 2].max(1));
    }

    #[test]
    fn recurrence_creates_repeated_pairs() {
        let d = social_evolution(Scale::Tiny, 3);
        let mut pairs = std::collections::HashMap::new();
        for e in d.stream.events() {
            *pairs.entry((e.src, e.dst)).or_insert(0usize) += 1;
        }
        let max_repeat = pairs.values().copied().max().unwrap();
        assert!(max_repeat > 3, "expected recurring pairs, max {max_repeat}");
    }

    #[test]
    fn no_self_loops() {
        let d = github(Scale::Tiny, 4);
        assert!(d.stream.events().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(github(Scale::Tiny, 5).stream, github(Scale::Tiny, 5).stream);
    }
}
