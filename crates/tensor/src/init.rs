//! Seeded random tensor initialization.
//!
//! All randomness in the suite flows through [`TensorRng`] so that every
//! experiment is reproducible bit-for-bit from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Tensor;

/// Weight-initialization schemes used by the DGNN layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Uniform over `[-a, a]`.
    Uniform(f32),
    /// Gaussian with the given standard deviation.
    Normal(f32),
    /// Xavier/Glorot uniform: `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// All zeros (bias default).
    Zeros,
}

/// Deterministic random number source for tensor initialization.
///
/// ```
/// use dgnn_tensor::{Initializer, TensorRng};
///
/// let mut rng = TensorRng::seed(42);
/// let w = rng.init(&[4, 3], Initializer::XavierUniform);
/// assert_eq!(w.dims(), &[4, 3]);
/// assert!(w.all_finite());
/// ```
#[derive(Debug)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a fixed seed.
    pub fn seed(seed: u64) -> Self {
        TensorRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Draws a uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// Draws a standard-normal `f32` via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Draws a uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// Initializes a tensor with the given scheme. For
    /// [`Initializer::XavierUniform`] the first dimension is treated as
    /// fan-out and the second (or 1) as fan-in.
    pub fn init(&mut self, dims: &[usize], scheme: Initializer) -> Tensor {
        let len: usize = dims.iter().product();
        let data = match scheme {
            Initializer::Zeros => vec![0.0; len],
            Initializer::Uniform(a) => (0..len).map(|_| self.uniform(-a, a)).collect(),
            Initializer::Normal(std) => (0..len).map(|_| self.normal() * std).collect(),
            Initializer::XavierUniform => {
                let fan_out = dims.first().copied().unwrap_or(1);
                let fan_in = dims.get(1).copied().unwrap_or(1);
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                (0..len).map(|_| self.uniform(-a, a)).collect()
            }
        };
        Tensor::from_vec(data, dims).expect("init produces matching length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = TensorRng::seed(7).init(&[3, 3], Initializer::Normal(1.0));
        let b = TensorRng::seed(7).init(&[3, 3], Initializer::Normal(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::seed(1).init(&[16], Initializer::Uniform(1.0));
        let b = TensorRng::seed(2).init(&[16], Initializer::Uniform(1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_bound_respected() {
        let w = TensorRng::seed(3).init(&[10, 20], Initializer::XavierUniform);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zeros_scheme_is_zero() {
        let w = TensorRng::seed(4).init(&[5], Initializer::Zeros);
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = TensorRng::seed(5);
        let samples: Vec<f32> = (0..4000).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
            / samples.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }
}
