//! LINT4 clean twin (3/4): `n_neighbors` is reached through its
//! builder alias `with_neighbors` — the assignment links the two.

pub struct InferenceConfig {
    pub batch_size: usize,
    pub n_neighbors: usize,
}

impl InferenceConfig {
    pub fn with_neighbors(mut self, k: usize) -> Self {
        self.n_neighbors = k;
        self
    }
}
