//! Device-resident feature cache × transfer-mode ablation.
//!
//! The paper's Section 4 transfer bottleneck assumes every sampled
//! feature row re-crosses PCIe on every mini-batch. Two mitigations the
//! profiled frameworks leave on the table:
//!
//! 1. **Feature caching** (`InferenceConfig::feature_cache`): an LRU of
//!    feature/memory rows resident on the device. A hit skips the H2D
//!    transfer entirely; only cold rows are priced. Swept over cache
//!    capacity on TGN (node memory), TGAT (neighbor features) and
//!    MolDGNN (trajectory frame adjacencies — frames repeat across
//!    units, so a cache sized to the working set removes the memcpy
//!    wall).
//! 2. **Pinned-transfer pricing** (`TransferMode`): the baseline link
//!    model assumes pinned staging. `Pageable` prices what the naive
//!    allocation path costs — per-transfer host metadata plus a
//!    staging-buffer copy at host memcpy bandwidth before the (slower)
//!    pageable PCIe rate.
//!
//! Numerics are invariant across every cell: the cache and the transfer
//! mode reroute *pricing* only, and the binary asserts bit-identical
//! checksums against the uncached pinned baseline.
//!
//! Every measurement is emitted as a machine-readable `BENCH {json}`
//! line; the committed `BENCH_cache.json` baseline at the repo root is
//! the array of these records.
//!
//! Usage: `feature_cache [--scale tiny|small|full] [--seed N] [--smoke]`
//!
//! `--smoke` shrinks the sweep to one tiny configuration per model and
//! adds a determinism replay plus a sanitizer audit of a traced cached
//! run, so CI exercises the full code path in seconds.

use dgnn_bench::{build_model, parse_opts};
use dgnn_datasets::Scale;
use dgnn_device::{CacheStats, ExecMode, Executor, PlatformSpec, TransferMode};
use dgnn_models::InferenceConfig;
use dgnn_profile::{InferenceProfile, TextTable};

/// One measured cell of the sweep. Times cover the inference window
/// only — the §4.4 one-time context/model warm-up is identical across
/// cells and would drown the transfer ablation in a constant.
struct Cell {
    inference_ns: u64,
    transfer_bytes: u64,
    checksum_bits: u32,
    cache: CacheStats,
}

fn run_cell(
    name: &str,
    scale: Scale,
    seed: u64,
    cfg: &InferenceConfig,
    capacity: Option<usize>,
    mode: TransferMode,
) -> Cell {
    let mut model = build_model(name, scale, seed);
    let mut cfg = cfg.clone().with_transfer_mode(mode);
    if let Some(cap) = capacity {
        cfg = cfg.with_feature_cache(cap);
    }
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let summary = model
        .run(&mut ex, &cfg)
        .unwrap_or_else(|e| panic!("{name} inference failed: {e}"));
    let profile = InferenceProfile::capture(&ex, "inference");
    Cell {
        inference_ns: profile.inference_time.as_nanos(),
        transfer_bytes: ex.timeline().transfer_bytes(None),
        checksum_bits: summary.checksum.to_bits(),
        cache: ex.cache_stats(),
    }
}

fn main() {
    let opts = parse_opts();
    let smoke = opts.rest.iter().any(|a| a == "--smoke");
    // Cache hit structure is scale-insensitive (reuse comes from the
    // unit loop and sampler popularity, not event count), so cap at
    // Small to keep host-side sampling wall-clock sane.
    let scale = if smoke {
        Scale::Tiny
    } else {
        match opts.scale {
            Scale::Full => Scale::Small,
            s => s,
        }
    };

    // (model, inference config): recurrent regimes where rows re-cross
    // PCIe — TGN node memory for batch endpoints + sampled neighbors,
    // TGAT neighbor features, MolDGNN per-frame adjacencies repeated
    // over units.
    let units = if smoke { 2 } else { 4 };
    let cases: Vec<(&str, InferenceConfig)> = vec![
        (
            "tgn",
            InferenceConfig::default()
                .with_batch_size(if smoke { 128 } else { 512 })
                .with_neighbors(10)
                .with_max_units(units),
        ),
        (
            "tgat",
            InferenceConfig::default()
                .with_batch_size(if smoke { 100 } else { 200 })
                .with_neighbors(20)
                .with_max_units(units),
        ),
        (
            "moldgnn",
            InferenceConfig::default()
                .with_batch_size(if smoke { 16 } else { 128 })
                .with_max_units(if smoke { 2 } else { 3 }),
        ),
    ];
    let capacities: &[usize] = if smoke { &[4096] } else { &[1_024, 1 << 20] };

    let mut table = TextTable::new(
        &format!("Feature cache × transfer mode — end-to-end simulated time ({scale:?})"),
        &[
            "model",
            "mode",
            "capacity",
            "base ms",
            "cached ms",
            "speedup",
            "hit rate",
            "bytes saved",
        ],
    );
    let mut best_speedup = 0.0f64;

    for (name, cfg) in &cases {
        for mode in [TransferMode::Pinned, TransferMode::Pageable] {
            let base = run_cell(name, scale, opts.seed, cfg, None, mode);
            for &cap in capacities {
                let cached = run_cell(name, scale, opts.seed, cfg, Some(cap), mode);
                assert_eq!(
                    base.checksum_bits, cached.checksum_bits,
                    "{name}: the cache must not change numerics"
                );
                assert!(
                    cached.transfer_bytes <= base.transfer_bytes,
                    "{name}: the cache must never add priced bytes"
                );
                // Both modes count toward the headline reduction: the
                // profiled frameworks ship tensors from pageable
                // allocations by default, so the pageable baseline is
                // the paper-faithful one and pinned staging is itself
                // already a mitigation. Each record names its mode.
                let speedup = base.inference_ns as f64 / cached.inference_ns as f64;
                best_speedup = best_speedup.max(speedup);
                table.row(&[
                    (*name).to_string(),
                    mode.name().to_string(),
                    format!("{cap}"),
                    format!("{:.3}", base.inference_ns as f64 / 1e6),
                    format!("{:.3}", cached.inference_ns as f64 / 1e6),
                    format!("{speedup:.2}x"),
                    format!("{:.1}%", cached.cache.hit_rate() * 100.0),
                    format!("{}", base.transfer_bytes - cached.transfer_bytes),
                ]);
                println!(
                    "BENCH {{\"bench\":\"feature_cache\",\"model\":\"{name}\",\
                     \"mode\":\"{}\",\"capacity\":{cap},\"base_ns\":{},\"cached_ns\":{},\
                     \"speedup\":{speedup:.4},\"hits\":{},\"misses\":{},\"evictions\":{},\
                     \"hit_rate\":{:.4},\"base_transfer_bytes\":{},\"cached_transfer_bytes\":{}}}",
                    mode.name(),
                    base.inference_ns,
                    cached.inference_ns,
                    cached.cache.hits,
                    cached.cache.misses,
                    cached.cache.evictions,
                    cached.cache.hit_rate(),
                    base.transfer_bytes,
                    cached.transfer_bytes,
                );
            }
        }
    }
    print!("{}", table.render());

    // Pageable-vs-pinned tax on the uncached baselines: what the naive
    // allocation path costs before any caching.
    let mut tax_table = TextTable::new(
        "Pinned-transfer pricing — uncached pageable tax over the pinned baseline",
        &["model", "pinned ms", "pageable ms", "tax"],
    );
    for (name, cfg) in &cases {
        let pinned = run_cell(name, scale, opts.seed, cfg, None, TransferMode::Pinned);
        let pageable = run_cell(name, scale, opts.seed, cfg, None, TransferMode::Pageable);
        assert_eq!(pinned.checksum_bits, pageable.checksum_bits);
        assert!(
            pageable.inference_ns > pinned.inference_ns,
            "{name}: pageable transfers must cost more"
        );
        let tax = pageable.inference_ns as f64 / pinned.inference_ns as f64 - 1.0;
        tax_table.row(&[
            (*name).to_string(),
            format!("{:.3}", pinned.inference_ns as f64 / 1e6),
            format!("{:.3}", pageable.inference_ns as f64 / 1e6),
            format!("+{:.1}%", tax * 100.0),
        ]);
        println!(
            "BENCH {{\"bench\":\"transfer_mode_tax\",\"model\":\"{name}\",\
             \"pinned_ns\":{},\"pageable_ns\":{},\"tax\":{tax:.4}}}",
            pinned.inference_ns, pageable.inference_ns,
        );
    }
    print!("{}", tax_table.render());

    if smoke {
        // Determinism replay: one cached cell twice, bit for bit.
        let (name, cfg) = &cases[0];
        let a = run_cell(
            name,
            scale,
            opts.seed,
            cfg,
            Some(4096),
            TransferMode::Pinned,
        );
        let b = run_cell(
            name,
            scale,
            opts.seed,
            cfg,
            Some(4096),
            TransferMode::Pinned,
        );
        assert_eq!(
            a.inference_ns, b.inference_ns,
            "cached replay must be exact"
        );
        assert_eq!(a.checksum_bits, b.checksum_bits);
        assert_eq!(a.cache, b.cache, "cache counters must replay");

        // Sanitizer audit of a traced cached run: cache hits are
        // legitimately unpriced and must not trip RULE5.
        let mut model = build_model(name, scale, opts.seed);
        let traced_cfg = cfg.clone().with_feature_cache(4096);
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.enable_tracing();
        model
            .run(&mut ex, &traced_cfg)
            .unwrap_or_else(|e| panic!("{name} traced run failed: {e}"));
        let report = dgnn_analysis::audit(&ex);
        assert!(report.is_clean(), "cached run has hazards: {report}");
        assert!(
            report.stats.cache_hit_rows > 0 || ex.cache_stats().hits == 0,
            "traced hits must reach the sanitizer"
        );
        println!("smoke OK: cached replay exact, sanitizer clean ({})", name);
    } else {
        assert!(
            best_speedup >= 1.5,
            "expected >= 1.5x end-to-end reduction on at least one model, best {best_speedup:.2}x"
        );
    }
}
