//! Byte-identity property: sampling from (base CSR + delta log) equals
//! sampling from a frozen [`TemporalAdjacency`] built from the same
//! event prefix — for any event sequence, any split point, before and
//! after compaction, serially and across every thread count.
//!
//! This is the contract that makes the streaming refactor safe: the
//! two-tier [`StreamingAdjacency`] is *representationally* different
//! from the flat CSR but *observationally* identical, so every
//! downstream consumer (models, serving, benchmarks) keeps its bits.

use dgnn_graph::{
    EventStream, NeighborSampler, SampleStrategy, StreamingAdjacency, TemporalAdjacency,
    TemporalEvent,
};

/// Splitmix-style generator for reproducible random event sequences.
fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A random, time-sorted event sequence with repeated timestamps and
/// hub-skewed endpoints (hubs stress long adjacency rows).
#[expect(
    clippy::cast_possible_truncation,
    reason = "test draws are reduced mod small n_nodes"
)]
fn random_events(seed: u64, n_nodes: usize, n_events: usize) -> Vec<TemporalEvent> {
    let mut state = seed;
    let mut t = 0.0f64;
    (0..n_events)
        .map(|i| {
            // ~1 in 4 events shares its predecessor's timestamp.
            if !splitmix(&mut state).is_multiple_of(4) {
                t += (splitmix(&mut state) % 7 + 1) as f64 * 0.25;
            }
            let src = if splitmix(&mut state).is_multiple_of(3) {
                0 // hub
            } else {
                (splitmix(&mut state) as usize) % n_nodes
            };
            let mut dst = (splitmix(&mut state) as usize) % n_nodes;
            if dst == src {
                dst = (dst + 1) % n_nodes;
            }
            TemporalEvent {
                src,
                dst,
                time: t,
                feature_idx: i,
            }
        })
        .collect()
}

/// Query times that bracket, split, and exceed the event time range.
fn probe_times(events: &[TemporalEvent]) -> Vec<f64> {
    let end = events.last().map_or(1.0, |e| e.time);
    vec![
        0.0,
        end * 0.3 + 0.1,
        end * 0.7 + 0.1,
        end + 1.0,
        f64::INFINITY,
    ]
}

fn samplers() -> Vec<NeighborSampler> {
    vec![
        NeighborSampler::new(SampleStrategy::MostRecent, 99),
        NeighborSampler::new(SampleStrategy::Uniform, 99),
    ]
}

/// Asserts the streaming view at `visible` matches the frozen CSR of
/// the same prefix under every sampler, probe time, batch API, and
/// thread count.
fn assert_byte_identical(
    live: &StreamingAdjacency,
    events: &[TemporalEvent],
    n_nodes: usize,
    visible: usize,
) {
    let frozen = TemporalAdjacency::from_stream(
        &EventStream::new(n_nodes, events[..visible].to_vec()).expect("sorted prefix"),
    );
    let view = live.view_prefix(visible);
    for sampler in samplers() {
        for &t in &probe_times(&events[..visible]) {
            let roots: Vec<(usize, f64)> = (0..n_nodes).map(|v| (v, t)).collect();
            // Per-node single-hop samples and costs.
            for &(node, tt) in &roots {
                assert_eq!(
                    sampler.sample(&frozen, node, tt, 3),
                    sampler.sample(&view, node, tt, 3),
                    "visible={visible} node={node} t={tt}"
                );
            }
            // Batch fan-out across the RAYON_NUM_THREADS-style matrix:
            // every thread count must reproduce the frozen serial bits.
            let (ref_samples, ref_cost) = sampler.sample_batch_threads(&frozen, &roots, 2, 1);
            let (ref_layers, ref_khop_cost) =
                sampler.sample_khop_batch_threads(&frozen, &roots, &[2, 2], 1);
            for threads in [1, 2, 4, 16] {
                assert_eq!(
                    sampler.sample_batch_threads(&view, &roots, 2, threads),
                    (ref_samples.clone(), ref_cost),
                    "visible={visible} threads={threads} t={t}"
                );
                assert_eq!(
                    sampler.sample_khop_batch_threads(&view, &roots, &[2, 2], threads),
                    (ref_layers.clone(), ref_khop_cost),
                    "k-hop visible={visible} threads={threads} t={t}"
                );
            }
        }
    }
}

#[test]
fn any_split_of_any_sequence_matches_the_frozen_graph() {
    let n_nodes = 10;
    let n_events = 48;
    for seed in [3u64, 17] {
        let events = random_events(seed, n_nodes, n_events);
        // Threshold 7: compactions keep landing mid-sequence, so splits
        // probe every base/delta mix. Threshold 1000: pure delta log.
        for threshold in [7usize, 1000] {
            let mut live = StreamingAdjacency::new(n_nodes, threshold);
            assert_byte_identical(&live, &events, n_nodes, 0);
            for (i, ev) in events.iter().enumerate() {
                live.append(*ev).expect("valid event");
                assert_byte_identical(&live, &events, n_nodes, i + 1);
            }
            assert_eq!(live.total_events(), n_events);
            if threshold == 7 {
                assert!(live.compactions() > 0, "threshold 7 must compact");
            }
        }
    }
}

#[test]
fn explicit_compaction_preserves_every_visible_prefix() {
    let n_nodes = 8;
    let events = random_events(41, n_nodes, 40);
    let mut live = StreamingAdjacency::new(n_nodes, 1000);
    for ev in &events {
        live.append(*ev).expect("valid event");
    }
    assert_eq!(live.compactions(), 0, "threshold 1000 never auto-compacts");
    // Every split must read identically before and after the physical
    // representation collapses into the base tier.
    for visible in 0..=events.len() {
        assert_byte_identical(&live, &events, n_nodes, visible);
    }
    live.compact();
    assert_eq!(live.delta_events(), 0);
    for visible in 0..=events.len() {
        assert_byte_identical(&live, &events, n_nodes, visible);
    }
}

#[test]
fn interleaved_appends_and_compactions_keep_view_identity() {
    let n_nodes = 6;
    let events = random_events(7, n_nodes, 36);
    let mut live = StreamingAdjacency::new(n_nodes, 1000);
    for (i, ev) in events.iter().enumerate() {
        live.append(*ev).expect("valid event");
        if i % 5 == 4 {
            live.compact();
            // A view cut strictly inside the (now compacted) base tier.
            assert_byte_identical(&live, &events, n_nodes, i / 2);
        }
    }
    assert_byte_identical(&live, &events, n_nodes, events.len());
}
