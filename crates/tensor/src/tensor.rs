use std::fmt;

use crate::{Result, Shape, TensorError};

/// A dense, row-major, `f32` tensor.
///
/// The type is the numeric workhorse of the reproduction suite: every DGNN
/// layer produces and consumes `Tensor`s. Data is stored contiguously; all
/// views are materialized (copies), which keeps the semantics simple and
/// deterministic — appropriate for a simulator whose *timing* comes from an
/// analytical cost model rather than from this host-side arithmetic.
///
/// ```
/// use dgnn_tensor::Tensor;
///
/// # fn main() -> Result<(), dgnn_tensor::TensorError> {
/// let x = Tensor::zeros(&[2, 3]);
/// assert_eq!(x.shape().dims(), &[2, 3]);
/// assert_eq!(x.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLenMismatch`] when `data.len()` differs
    /// from the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::DataLenMismatch {
                data_len: data.len(),
                shape_len: shape.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor::full(dims, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates an `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a 1-D tensor `[0, 1, ..., n-1]` as `f32`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            data: (0..n).map(|i| i as f32).collect(),
            shape: Shape::new(&[n]),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimensions as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the tensor payload in bytes.
    pub fn byte_len(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Immutable access to the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with a new shape over the same data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLenMismatch`] when element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.shape.check_same(&other.shape, "max_abs_diff")?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Asserts element-wise closeness within `tol`; used heavily in tests.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ or any element pair differs by more than
    /// `tol`.
    pub fn assert_close(&self, other: &Tensor, tol: f32) {
        let diff = self
            .max_abs_diff(other)
            .unwrap_or_else(|e| panic!("assert_close shape error: {e}"));
        assert!(
            diff <= tol,
            "tensors differ by {diff} (> {tol}): {self:?} vs {other:?}"
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{}[", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", … {} more", self.data.len() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::DataLenMismatch { .. })
        ));
    }

    #[test]
    fn eye_is_identity() {
        let id = Tensor::eye(3);
        assert_eq!(id.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(id.at(&[1, 2]).unwrap(), 0.0);
        assert_eq!(id.as_slice().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn set_and_at_round_trip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 7.5).unwrap();
        assert_eq!(t.at(&[1, 0]).unwrap(), 7.5);
        assert_eq!(t.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 5.0);
        assert!(t.reshape(&[7]).is_err());
    }

    #[test]
    fn debug_preview_is_bounded() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("more"));
        assert!(s.len() < 200);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.all_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn byte_len_counts_f32() {
        assert_eq!(Tensor::zeros(&[4, 4]).byte_len(), 64);
    }
}
