//! Timeline events: the simulated Nsight Systems trace records.

use crate::kernel::KernelKind;
use crate::stream::StreamId;
use crate::time::DurationNs;

/// Where an event executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Place {
    /// The host CPU.
    Cpu,
    /// The accelerator.
    Gpu,
    /// The PCIe link between them.
    Pcie,
}

/// Direction of a CPU↔GPU copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

impl TransferDir {
    /// Display name matching Nsight's memcpy naming.
    pub fn name(self) -> &'static str {
        match self {
            TransferDir::H2D => "memcpy_h2d",
            TransferDir::D2H => "memcpy_d2h",
        }
    }
}

/// What a timeline event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventCategory {
    /// A device kernel of the given family.
    Kernel(KernelKind),
    /// A PCIe copy.
    Transfer(TransferDir),
    /// Host-side computation (sampling, preprocessing).
    Host,
    /// CUDA context lazy initialization.
    WarmupContext,
    /// Model initialization (weight upload, allocation, stream capture).
    WarmupModelInit,
    /// Per-run activation allocation.
    WarmupAlloc,
    /// A cross-device (GPU↔GPU) copy — direct over a peer link, or
    /// bounced through host memory when no peer edge exists.
    PeerTransfer,
}

impl EventCategory {
    /// Whether the event is part of GPU warm-up (Section 4.4).
    pub fn is_warmup(self) -> bool {
        matches!(
            self,
            EventCategory::WarmupContext
                | EventCategory::WarmupModelInit
                | EventCategory::WarmupAlloc
        )
    }

    /// Whether the event occupies the GPU's execution units.
    pub fn is_gpu_compute(self) -> bool {
        matches!(self, EventCategory::Kernel(_))
    }
}

/// One interval on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Human-readable label.
    pub label: &'static str,
    /// Profiler scope path active when the event was emitted
    /// (e.g. `"inference/attention"`).
    pub scope: String,
    /// Event category.
    pub category: EventCategory,
    /// Execution place.
    pub place: Place,
    /// Start time since simulation begin.
    pub start: DurationNs,
    /// End time since simulation begin.
    pub end: DurationNs,
    /// Fraction of the device's execution width this event used
    /// (occupancy; 1.0 for transfers/host work).
    pub occupancy: f64,
    /// FLOPs performed.
    pub flops: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Execution lane the event was issued on. `None` for the sequential
    /// engine (the default); `Some` only inside a stream fork, where
    /// events on different lanes may overlap in time.
    pub stream: Option<StreamId>,
    /// GPU the event is attributed to (0 on the historical single-GPU
    /// platform; meaningful for Gpu/Pcie places under sharded runs).
    pub device: usize,
}

impl TimelineEvent {
    /// Event duration.
    pub fn duration(&self) -> DurationNs {
        self.end - self.start
    }

    /// Overlap of this event with a window, in nanoseconds.
    pub fn overlap(&self, win_start: DurationNs, win_end: DurationNs) -> DurationNs {
        let s = self.start.max(win_start);
        let e = self.end.min(win_end);
        e.saturating_sub(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: u64, end: u64) -> TimelineEvent {
        TimelineEvent {
            label: "k",
            scope: String::new(),
            category: EventCategory::Kernel(KernelKind::Gemm),
            place: Place::Gpu,
            start: DurationNs::from_nanos(start),
            end: DurationNs::from_nanos(end),
            occupancy: 0.5,
            flops: 0,
            bytes: 0,
            stream: None,
            device: 0,
        }
    }

    #[test]
    fn duration_and_overlap() {
        let e = ev(10, 30);
        assert_eq!(e.duration().as_nanos(), 20);
        assert_eq!(
            e.overlap(DurationNs::from_nanos(20), DurationNs::from_nanos(100))
                .as_nanos(),
            10
        );
        assert_eq!(
            e.overlap(DurationNs::from_nanos(40), DurationNs::from_nanos(50))
                .as_nanos(),
            0
        );
    }

    #[test]
    fn warmup_classification() {
        assert!(EventCategory::WarmupContext.is_warmup());
        assert!(EventCategory::WarmupAlloc.is_warmup());
        assert!(!EventCategory::Host.is_warmup());
        assert!(EventCategory::Kernel(KernelKind::Gemm).is_gpu_compute());
        assert!(!EventCategory::Transfer(TransferDir::H2D).is_gpu_compute());
    }
}
