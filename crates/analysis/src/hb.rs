//! Vector-clock happens-before reconstruction over a recorded
//! [`dgnn_device::ExecTrace`].
//!
//! The stream machine has one logical time component per lane per
//! forked device, plus the serial clock:
//!
//! | component | meaning |
//! |---|---|
//! | 0 `host`    | device 0's Host lane of an active fork |
//! | 1 `copy`    | device 0's Copy lane of an active fork |
//! | 2 `compute` | device 0's Compute lane of an active fork |
//! | 3 `serial`  | the serial clock — and, inside a fork, the *issuing thread* |
//! | `4 + 3·(d−1) + lane` | device `d ≥ 1`'s lane |
//!
//! Single-device traces only ever touch components 0–3, so their
//! happens-before graph is bit-identical to the historical four-component
//! engine. Components for extra devices are grown lazily as the trace
//! references them.
//!
//! Every causally relevant trace record becomes a [`Node`] stamped with
//! its component's vector clock; `hb(a, b)` then answers whether `a` is
//! ordered before `b` by the recorded synchronization — transitively,
//! through any chain of `record_event`/`wait_event` edges, fork/join
//! boundaries and issue order.
//!
//! Edges, mirroring the simulated CUDA semantics:
//!
//! * **Program order per component** — a component's own counter only
//!   grows.
//! * **Fork** — every lane on every device inherits the serial clock
//!   (work before the fork is visible to all lanes).
//! * **Join** — the serial clock absorbs every lane (work in the fork is
//!   visible after it).
//! * **Event record/wait** — `record_event` snapshots the recording
//!   lane's clock under the event index; `wait_event` joins the snapshot
//!   into the waiting lane — including across devices, which is how
//!   sharded execution orders cross-shard reads after peer transfers.
//!   Snapshots are scoped to the active fork, matching the runtime's
//!   fork-ownership check on [`dgnn_device::EventId`].
//! * **Issue order** — inside a fork, a lane node absorbs the *serial*
//!   component at issue time: lane commands are created by the single
//!   program thread in program order, so host-side bookkeeping (e.g.
//!   `adopt`) that precedes a lane command in the program is visible to
//!   it. The converse edge does not exist — lane work is asynchronous
//!   and its effects are only visible to the serial component after a
//!   join.

use std::collections::HashMap;

use dgnn_device::StreamId;

/// Components of a single-device trace (three lanes + serial); the
/// engine grows past this when extra devices appear.
pub(crate) const BASE_COMPONENTS: usize = 4;
/// Component index of the serial clock / issuing thread.
pub(crate) const SERIAL: usize = 3;

/// Maps an issuing (device, lane) pair to its component index.
pub(crate) fn component(device: usize, lane: Option<StreamId>) -> usize {
    match lane {
        None => SERIAL,
        Some(l) if device == 0 => l.index(),
        Some(l) => BASE_COMPONENTS + 3 * (device - 1) + l.index(),
    }
}

/// Display name of a component (lane role; device identity is carried
/// separately in diagnostics).
pub(crate) fn component_name(c: usize) -> &'static str {
    if c == SERIAL {
        return "serial";
    }
    let lane = if c < SERIAL {
        c
    } else {
        (c - BASE_COMPONENTS) % 3
    };
    match lane {
        0 => "host",
        1 => "copy",
        _ => "compute",
    }
}

/// A growable vector clock, one counter per component.
pub(crate) type VClock = Vec<u64>;

fn join_into(a: &mut VClock, b: &VClock) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x).max(*y);
    }
}

/// One causally relevant trace record, stamped at issue.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Issuing component.
    pub comp: usize,
    /// This node's sequence number on its component.
    pub own: u64,
    /// The component's vector clock including this node.
    pub vc: VClock,
    /// Trace record index (diagnostics).
    pub rec: usize,
    /// Timeline cursor when the record was logged (diagnostics).
    pub at_event: usize,
}

/// Whether `a` happens-before `b` (or `a` and `b` are the same node).
/// Components `b` never heard of implicitly sit at 0.
pub(crate) fn hb(a: &Node, b: &Node) -> bool {
    b.vc.get(a.comp).copied().unwrap_or(0) >= a.own
}

/// Incremental vector-clock engine, advanced in trace program order.
/// Components are grown on first touch; a trace that never switches
/// devices behaves exactly like the historical fixed-size engine.
#[derive(Debug)]
pub(crate) struct HbEngine {
    vc: Vec<VClock>,
    /// Event index → recording lane's clock, scoped to the active fork.
    /// Point lookups only (keyed get/insert), never iterated — visit
    /// order cannot affect happens-before results.
    snapshots: HashMap<usize, VClock>,
    /// Serial clock snapshot at the active fork's origin; lanes grown
    /// mid-fork inherit it (the fork edge reaches every device's lanes).
    fork_snapshot: Option<VClock>,
    /// Whether a fork is active.
    pub forked: bool,
}

impl HbEngine {
    pub(crate) fn new() -> Self {
        HbEngine {
            vc: vec![vec![0; BASE_COMPONENTS]; BASE_COMPONENTS],
            snapshots: HashMap::new(),
            fork_snapshot: None,
            forked: false,
        }
    }

    /// Ensures component `c` exists, inheriting the active fork's serial
    /// snapshot when grown mid-fork.
    fn ensure_component(&mut self, c: usize) {
        while self.vc.len() <= c {
            let clock = self.fork_snapshot.clone().unwrap_or_default();
            self.vc.push(clock);
        }
    }

    /// Stamps a new node on `device`/`lane`'s component.
    pub(crate) fn issue(
        &mut self,
        device: usize,
        lane: Option<StreamId>,
        rec: usize,
        at_event: usize,
    ) -> Node {
        let c = component(device, lane);
        self.ensure_component(c);
        self.absorb_issue_order(c);
        if self.vc[c].len() <= c {
            self.vc[c].resize(c + 1, 0);
        }
        self.vc[c][c] += 1;
        Node {
            comp: c,
            own: self.vc[c][c],
            vc: self.vc[c].clone(),
            rec,
            at_event,
        }
    }

    /// Inside a fork, lane commands absorb the issuing thread's progress.
    fn absorb_issue_order(&mut self, c: usize) {
        if self.forked && c != SERIAL {
            let serial = self.vc[SERIAL].clone();
            join_into(&mut self.vc[c], &serial);
        }
    }

    /// `fork_streams`: every lane (on every device seen so far) inherits
    /// the serial clock; event snapshots from earlier forks become
    /// unreachable (the runtime panics on cross-fork waits).
    pub(crate) fn fork(&mut self) {
        let serial = self.vc[SERIAL].clone();
        for (c, clock) in self.vc.iter_mut().enumerate() {
            if c != SERIAL {
                *clock = serial.clone();
            }
        }
        self.snapshots.clear();
        self.fork_snapshot = Some(serial);
        self.forked = true;
    }

    /// `join_streams`: the serial clock absorbs every lane.
    pub(crate) fn join(&mut self) {
        let mut merged = self.vc[SERIAL].clone();
        for (c, clock) in self.vc.iter().enumerate() {
            if c != SERIAL {
                join_into(&mut merged, clock);
            }
        }
        self.vc[SERIAL] = merged;
        self.fork_snapshot = None;
        self.forked = false;
    }

    /// `record_event`: snapshot the recording lane's clock.
    pub(crate) fn record(&mut self, event: usize, device: usize, lane: StreamId) {
        let c = component(device, Some(lane));
        self.ensure_component(c);
        self.absorb_issue_order(c);
        self.snapshots.insert(event, self.vc[c].clone());
    }

    /// `wait_event`: join the snapshot into the waiting lane. Returns
    /// `false` when the event was never recorded in the active fork.
    pub(crate) fn wait(&mut self, event: usize, device: usize, lane: StreamId) -> bool {
        let c = component(device, Some(lane));
        self.ensure_component(c);
        self.absorb_issue_order(c);
        match self.snapshots.get(&event) {
            Some(snapshot) => {
                let snapshot = snapshot.clone();
                join_into(&mut self.vc[c], &snapshot);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_program_order_is_total() {
        let mut e = HbEngine::new();
        let a = e.issue(0, None, 0, 0);
        let b = e.issue(0, None, 1, 0);
        assert!(hb(&a, &b));
        assert!(!hb(&b, &a));
    }

    #[test]
    fn unsynchronized_lanes_are_concurrent() {
        let mut e = HbEngine::new();
        e.fork();
        let a = e.issue(0, Some(StreamId::Copy), 0, 0);
        let b = e.issue(0, Some(StreamId::Compute), 1, 0);
        assert!(!hb(&a, &b));
        assert!(!hb(&b, &a));
    }

    #[test]
    fn record_wait_orders_across_lanes() {
        let mut e = HbEngine::new();
        e.fork();
        let a = e.issue(0, Some(StreamId::Copy), 0, 0);
        e.record(0, 0, StreamId::Copy);
        assert!(e.wait(0, 0, StreamId::Compute));
        let b = e.issue(0, Some(StreamId::Compute), 1, 0);
        assert!(hb(&a, &b));
    }

    #[test]
    fn hb_is_transitive_through_two_handoffs() {
        let mut e = HbEngine::new();
        e.fork();
        let a = e.issue(0, Some(StreamId::Host), 0, 0);
        e.record(0, 0, StreamId::Host);
        assert!(e.wait(0, 0, StreamId::Copy));
        let _mid = e.issue(0, Some(StreamId::Copy), 1, 0);
        e.record(1, 0, StreamId::Copy);
        assert!(e.wait(1, 0, StreamId::Compute));
        let c = e.issue(0, Some(StreamId::Compute), 2, 0);
        assert!(hb(&a, &c));
    }

    #[test]
    fn fork_and_join_order_serial_work() {
        let mut e = HbEngine::new();
        let before = e.issue(0, None, 0, 0);
        e.fork();
        let lane = e.issue(0, Some(StreamId::Compute), 1, 0);
        assert!(hb(&before, &lane), "pre-fork work is visible to lanes");
        e.join();
        let after = e.issue(0, None, 2, 0);
        assert!(hb(&lane, &after), "post-join serial sees lane work");
    }

    #[test]
    fn issue_order_flows_serial_to_lane_but_not_back() {
        let mut e = HbEngine::new();
        e.fork();
        let lane = e.issue(0, Some(StreamId::Compute), 0, 0);
        let bookkeeping = e.issue(0, None, 1, 0);
        let later_lane = e.issue(0, Some(StreamId::Copy), 2, 0);
        assert!(hb(&bookkeeping, &later_lane), "issue order is an edge");
        assert!(!hb(&lane, &bookkeeping), "lane work is asynchronous");
    }

    #[test]
    fn snapshots_do_not_survive_a_new_fork() {
        let mut e = HbEngine::new();
        e.fork();
        e.record(0, 0, StreamId::Copy);
        e.join();
        e.fork();
        assert!(!e.wait(0, 0, StreamId::Compute), "stale event index");
    }

    #[test]
    fn same_lane_on_different_devices_is_concurrent() {
        let mut e = HbEngine::new();
        e.fork();
        let a = e.issue(0, Some(StreamId::Compute), 0, 0);
        let b = e.issue(1, Some(StreamId::Compute), 1, 0);
        assert_ne!(a.comp, b.comp, "devices own distinct components");
        assert!(!hb(&a, &b));
        assert!(!hb(&b, &a));
    }

    #[test]
    fn record_wait_orders_across_devices() {
        let mut e = HbEngine::new();
        e.fork();
        let producer = e.issue(0, Some(StreamId::Compute), 0, 0);
        e.record(0, 0, StreamId::Compute);
        assert!(e.wait(0, 2, StreamId::Copy));
        let consumer = e.issue(2, Some(StreamId::Copy), 1, 0);
        assert!(hb(&producer, &consumer));
    }

    #[test]
    fn pre_fork_work_is_visible_to_lanes_grown_mid_fork() {
        let mut e = HbEngine::new();
        let before = e.issue(0, None, 0, 0);
        e.fork();
        // Device 3's lanes did not exist at fork time; the fork edge
        // must still reach them.
        let lane = e.issue(3, Some(StreamId::Host), 1, 0);
        assert!(hb(&before, &lane));
        e.join();
        let after = e.issue(0, None, 2, 0);
        assert!(hb(&lane, &after), "join absorbs late-grown lanes");
    }
}
