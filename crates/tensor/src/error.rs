use std::fmt;

/// Error produced by tensor construction and tensor operations.
///
/// Every public fallible function in this crate returns
/// [`TensorError`] inside [`crate::Result`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the dimensions.
    DataLenMismatch {
        /// Number of elements supplied.
        data_len: usize,
        /// Number of elements the shape requires.
        shape_len: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        lhs: Vec<usize>,
        /// Shape of the right operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a different rank (number of dimensions).
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation expected.
        expected: usize,
        /// Rank it received.
        actual: usize,
    },
    /// An index was out of bounds for the given axis.
    IndexOutOfBounds {
        /// Name of the operation that failed.
        op: &'static str,
        /// Offending index.
        index: usize,
        /// Length of the indexed axis.
        len: usize,
    },
    /// An axis argument exceeded the tensor rank.
    AxisOutOfBounds {
        /// Offending axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// The operation requires a non-empty input.
    EmptyInput {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLenMismatch {
                data_len,
                shape_len,
            } => write!(
                f,
                "data length {data_len} does not match shape element count {shape_len}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "rank mismatch in `{op}`: expected {expected}, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { op, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for axis of length {len} in `{op}`"
                )
            }
            TensorError::AxisOutOfBounds { axis, rank } => {
                write!(f, "axis {axis} out of bounds for tensor of rank {rank}")
            }
            TensorError::EmptyInput { op } => write!(f, "`{op}` requires a non-empty input"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("[2, 3]"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
