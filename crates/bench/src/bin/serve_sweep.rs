//! Serving sweep: warm-pool amortization of the §4.4 warm-up cost.
//!
//! The paper measures that GPU context + model initialization can cost
//! as much as ~86 inference iterations (Table 2) and argues a serving
//! deployment must amortize it. This binary quantifies the amortization
//! with the deterministic `dgnn-serve` subsystem: a Poisson request
//! stream over a model mix, dynamic micro-batching, and a warm replica
//! pool, swept over pool sizes at a fixed arrival rate.
//!
//! With a pool smaller than the mix, every model alternation evicts
//! resident weights and re-pays `model_init` inside a request's
//! latency — cold-start spikes that surface at p99. A pool that fits
//! the mix pays warm-up only at provisioning time.
//!
//! Every configuration is emitted as a machine-readable `BENCH {json}`
//! line (p50/p95/p99, throughput, cold/warm service counts, and the
//! warm-up share of all busy time).
//!
//! Usage: `serve_sweep [--scale tiny|small|full] [--seed N] [--smoke]`
//!
//! `--smoke` shrinks to a tiny two-model mix and additionally
//! (1) replays one configuration to assert bit-determinism,
//! (2) audits every replica session with the timeline sanitizer —
//! serial and pipeline-overlap service modes — and
//! (3) asserts that pool 2 beats pool 1 at the tail.

use dgnn_bench::{parse_opts, served_zoo};
use dgnn_datasets::Scale;
use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_profile::TextTable;
use dgnn_serve::{serve, ServeConfig, ServeOutcome, ServedModel};

fn serve_cfg(scale_requests: usize, pool: usize, trace: bool) -> ServeConfig {
    ServeConfig {
        seed: 1,
        n_requests: scale_requests,
        arrival_rate_rps: 200.0,
        batch_window: DurationNs::from_millis(2),
        max_batch: 4,
        pool_size: pool,
        queue_bound: 1024,
        mode: ExecMode::Gpu,
        trace,
        spec: PlatformSpec::default(),
    }
}

fn bench_line(tag: &str, cfg: &ServeConfig, out: &ServeOutcome) {
    let r = &out.report;
    println!(
        "BENCH {{\"bench\":\"serve_sweep\",\"mix\":\"{tag}\",\"pool\":{},\
         \"rate_rps\":{:.1},\"window_ms\":{:.1},\"max_batch\":{},\
         \"offered\":{},\"served\":{},\"shed\":{},\"batches\":{},\
         \"mean_batch\":{:.3},\"cold_services\":{},\"warm_services\":{},\
         \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"mean_ns\":{},\
         \"throughput_rps\":{:.2},\"warmup_share\":{:.4}}}",
        r.pool_size,
        cfg.arrival_rate_rps,
        cfg.batch_window.as_secs_f64() * 1e3,
        cfg.max_batch,
        r.offered,
        r.served,
        r.shed,
        r.batches,
        r.mean_batch_size,
        r.cold_services,
        r.warm_services,
        r.latency.p50.as_nanos(),
        r.latency.p95.as_nanos(),
        r.latency.p99.as_nanos(),
        r.latency.mean.as_nanos(),
        r.throughput_rps,
        r.warmup_share(),
    );
}

fn main() {
    let opts = parse_opts();
    let smoke = opts.rest.iter().any(|a| a == "--smoke");
    // The sweep's object of study is scheduling + warm-up pricing, both
    // scale-insensitive; cap datasets at Small so host-side math stays
    // fast at full request counts.
    let scale = if smoke {
        Scale::Tiny
    } else {
        match opts.scale {
            Scale::Full => Scale::Small,
            s => s,
        }
    };
    let names: &[&str] = if smoke {
        &["jodie", "dyrep"]
    } else {
        &["jodie", "tgn", "dyrep", "ldg_mlp"]
    };
    let tag = names.join("+");
    let n_requests = if smoke { 24 } else { 96 };
    let pools: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    let mut table = TextTable::new(
        &format!("Serving sweep — mix [{tag}], 200 rps, window 2 ms ({scale:?})"),
        &[
            "pool",
            "served/shed",
            "cold/warm",
            "p50 (ms)",
            "p99 (ms)",
            "tput (rps)",
            "warm-up share",
        ],
    );

    let mut p99_by_pool: Vec<(usize, u64)> = Vec::new();
    for &pool in pools {
        let cfg = serve_cfg(n_requests, pool, false);
        let zoo = served_zoo(names, scale, opts.seed);
        let out = serve(&cfg, &zoo);
        let r = &out.report;
        table.row(&[
            format!("{pool}"),
            format!("{}/{}", r.served, r.shed),
            format!("{}/{}", r.cold_services, r.warm_services),
            format!("{:.3}", r.latency.p50.as_secs_f64() * 1e3),
            format!("{:.3}", r.latency.p99.as_secs_f64() * 1e3),
            format!("{:.1}", r.throughput_rps),
            format!("{:.1}%", r.warmup_share() * 100.0),
        ]);
        bench_line(&tag, &cfg, &out);
        p99_by_pool.push((pool, r.latency.p99.as_nanos()));
    }
    print!("{}", table.render());

    let p99_pool1 = p99_by_pool[0].1;
    let p99_pooln = p99_by_pool.last().expect("at least two pools").1;
    assert!(
        p99_pooln < p99_pool1,
        "a pool fitting the mix must cut tail latency: pool {} p99 {} ≥ pool 1 p99 {}",
        p99_by_pool.last().expect("non-empty").0,
        p99_pooln,
        p99_pool1,
    );

    if smoke {
        // 1. Bit-determinism: an identical configuration replays the
        //    identical schedule and numerics.
        let cfg = serve_cfg(n_requests, 1, false);
        let a = serve(&cfg, &served_zoo(names, scale, opts.seed));
        let b = serve(&cfg, &served_zoo(names, scale, opts.seed));
        assert_eq!(a.requests, b.requests, "serving replay diverged");
        let bits = |o: &ServeOutcome| -> Vec<u32> {
            o.batches
                .iter()
                .map(|x| x.summary.checksum.to_bits())
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "service numerics diverged");

        // 2. Sanitizer audit over served sessions, serial mode.
        let cfg = serve_cfg(12, 2, true);
        let out = serve(&cfg, &served_zoo(names, scale, opts.seed));
        for (slot, session) in out.sessions.iter().enumerate() {
            let report = dgnn_analysis::audit(session);
            assert!(
                report.is_clean(),
                "serial replica {slot} has hazards: {report:?}"
            );
        }

        // 3. Same audit with pipeline-overlap services: the replicas
        //    run the stream-forked drivers, so the sanitizer checks
        //    real cross-stream edges.
        let overlap_zoo: Vec<ServedModel> = served_zoo(&["tgat", "tgn"], scale, opts.seed)
            .into_iter()
            .map(|mut m| {
                m.cfg = m.cfg.with_pipeline_overlap(true).with_batch_size(64);
                m
            })
            .collect();
        let out = serve(&serve_cfg(8, 2, true), &overlap_zoo);
        for (slot, session) in out.sessions.iter().enumerate() {
            let report = dgnn_analysis::audit(session);
            assert!(
                report.is_clean(),
                "overlap replica {slot} has hazards: {report:?}"
            );
        }
        println!("serve_sweep --smoke: determinism + sanitizer (serial, overlap) OK");
    }
}
