//! # dgnn-device
//!
//! A deterministic, simulated CPU/GPU heterogeneous platform.
//!
//! The IISWC'22 paper this suite reproduces profiles DGNN inference on an
//! Intel Xeon 6226R and an NVIDIA A6000. This crate replaces that silicon
//! with an *analytical performance model* driven by a virtual nanosecond
//! clock:
//!
//! * every kernel costs `launch_overhead + max(flops / effective_throughput,
//!   bytes / bandwidth)`, where effective throughput scales with the
//!   kernel's data parallelism (occupancy) — tiny DGNN kernels are
//!   launch-bound exactly as the paper observes;
//! * host-side work (temporal neighbor sampling, snapshot preparation,
//!   t-batching) runs on the simulated CPU, optionally with an
//!   irregular-access bandwidth penalty;
//! * CPU↔GPU traffic pays PCIe latency + bandwidth;
//! * GPU warm-up is modeled as lazy context creation plus model
//!   initialization (weight upload + per-tensor allocation) plus per-run
//!   activation allocation — the three components of Section 4.4.
//!
//! Everything an execution does is recorded on a [`timeline::Timeline`]
//! (the simulated Nsight trace) and in scope records (the simulated PyTorch
//! Profiler trace); the `dgnn-profile` crate turns those into the paper's
//! tables and figures.
//!
//! ```
//! use dgnn_device::{Executor, ExecMode, KernelDesc, PlatformSpec};
//!
//! let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
//! ex.scope("attention", |ex| {
//!     ex.launch(KernelDesc::gemm("qk", 64, 32, 64));
//! });
//! assert!(ex.now().as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]

mod cache;
pub mod dispatch;
mod event;
mod executor;
mod kernel;
mod memory;
mod spec;
mod stream;
mod time;
pub mod timeline;
pub mod trace;
mod warmup;

pub use cache::{accumulate_class_stats, CacheStats, ClassCacheStats, FeatureCache, TensorClass};
pub use dispatch::{CacheFetch, DeviceTensor, Dispatcher, Operand};
pub use event::{EventCategory, Place, TimelineEvent, TransferDir};
pub use executor::{ExecMode, Executor, ScopeRecord};
pub use kernel::{HostWork, KernelDesc, KernelKind};
pub use memory::MemoryTracker;
pub use spec::{
    CpuSpec, DeviceId, GpuSpec, LinkSpec, PcieSpec, PeerPath, PlatformSpec, TransferMode,
};
pub use stream::{EventId, StreamId};
pub use time::DurationNs;
pub use timeline::Timeline;
pub use trace::{AccessKind, ExecTrace, TensorId, TraceRecord};
pub use warmup::WarmupModel;
