//! Deterministic request-stream generation.
//!
//! Arrivals follow a Poisson process: inter-arrival gaps are drawn from
//! an exponential distribution via inverse-transform sampling on a
//! seeded [`TensorRng`], then rounded to integer (≥ 1) virtual
//! nanoseconds so two requests never share an instant and every
//! downstream computation stays bit-deterministic. Each request is
//! independently assigned a model from a weighted mix.

use std::fmt;

use dgnn_device::DurationNs;
use dgnn_tensor::TensorRng;

/// Smallest accepted rate, in events per simulated second. Below this
/// the expected inter-arrival gap exceeds ~31 simulated years and
/// `gap_s * 1e9` can overflow to infinity (for subnormal rates it
/// always does), which `as u64` then silently saturates — turning a
/// configuration mistake into a nonsense schedule instead of an error.
pub const MIN_RATE: f64 = 1e-9;

/// A rejected rate parameter: the typed error behind
/// [`validate_rate`], [`crate::ServeConfig::validate`] and
/// [`crate::StreamingConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RateError {
    /// Which rate was rejected (e.g. `"arrival rate"`).
    pub what: &'static str,
    /// The offending value.
    pub value: f64,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} is invalid: {} (rate must be a finite value >= {MIN_RATE:e} per second)",
            self.what, self.value, self.reason
        )
    }
}

impl std::error::Error for RateError {}

/// Validates an events-per-simulated-second rate. Rejects NaN and
/// infinities, zero and negatives, and positive values below
/// [`MIN_RATE`] (including every subnormal), whose exponential gaps
/// would overflow the integer-nanosecond clock.
///
/// # Errors
///
/// Returns a [`RateError`] naming the parameter and the reason.
pub fn validate_rate(what: &'static str, rate: f64) -> Result<(), RateError> {
    let reason = if rate.is_nan() {
        "not a number"
    } else if rate.is_infinite() {
        "not finite"
    } else if rate <= 0.0 {
        "not positive"
    } else if rate < MIN_RATE {
        "too small — the expected gap overflows the virtual clock"
    } else {
        return Ok(());
    };
    Err(RateError {
        what,
        value: rate,
        reason,
    })
}

/// One inference request: a query for one unit of work (one mini-batch
/// at the target model's configured batch size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Dense request id (arrival order).
    pub id: usize,
    /// Index into the served model mix.
    pub model: usize,
    /// Virtual arrival time.
    pub arrival: DurationNs,
}

/// Generates `n` requests at `rate_rps` expected arrivals per simulated
/// second, with models drawn from `weights` (need not be normalized).
///
/// # Panics
///
/// Panics when `rate_rps` fails [`validate_rate`], `weights` is empty,
/// or the weights sum to zero. Call [`validate_rate`] (or
/// [`crate::ServeConfig::validate`]) first to get the typed
/// [`RateError`] instead of a panic.
pub fn generate(seed: u64, n: usize, rate_rps: f64, weights: &[f64]) -> Vec<Request> {
    if let Err(e) = validate_rate("arrival rate", rate_rps) {
        panic!("{e}");
    }
    assert!(!weights.is_empty(), "model mix must not be empty");
    let total_weight: f64 = weights.iter().sum();
    assert!(total_weight > 0.0, "model mix weights must sum > 0");

    // Distinct RNG streams for gaps and mix assignment keep the two
    // decisions independent of each other's draw counts.
    let mut gap_rng = TensorRng::seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5e2e);
    let mut mix_rng = TensorRng::seed(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ 0x313a);

    let mut t_ns = 0u64;
    (0..n)
        .map(|id| {
            // Exponential gap: -ln(1 - u) / rate, u ∈ [0, 1).
            let u = gap_rng.unit_f64();
            let gap_s = -(1.0 - u).ln() / rate_rps;
            #[expect(clippy::cast_possible_truncation, reason = "gaps are ≪ u64::MAX ns")]
            #[expect(clippy::cast_sign_loss, reason = "gap_s ≥ 0 by construction")]
            let gap_ns = ((gap_s * 1e9).round() as u64).max(1);
            t_ns += gap_ns;

            let mut pick = mix_rng.unit_f64() * total_weight;
            let mut model = weights.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    model = i;
                    break;
                }
                pick -= w;
            }
            Request {
                id,
                model,
                arrival: DurationNs::from_nanos(t_ns),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let reqs = generate(7, 500, 1_000.0, &[1.0, 1.0]);
        assert_eq!(reqs.len(), 500);
        for w in reqs.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 200, 50.0, &[3.0, 1.0]);
        let b = generate(42, 200, 50.0, &[3.0, 1.0]);
        assert_eq!(a, b);
        let c = generate(43, 200, 50.0, &[3.0, 1.0]);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        let rate = 100.0; // 10 ms expected gap
        let reqs = generate(1, 2_000, rate, &[1.0]);
        let mean_gap_s = reqs.last().unwrap().arrival.as_secs_f64() / reqs.len() as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap_s - expected).abs() < expected * 0.15,
            "mean gap {mean_gap_s} vs expected {expected}"
        );
    }

    #[test]
    fn mix_respects_weights() {
        let reqs = generate(9, 4_000, 1_000.0, &[3.0, 1.0]);
        let first = reqs.iter().filter(|r| r.model == 0).count();
        let share = first as f64 / reqs.len() as f64;
        assert!(
            (share - 0.75).abs() < 0.05,
            "model 0 share {share} should be ≈ 0.75"
        );
    }

    #[test]
    #[should_panic(expected = "not positive")]
    fn zero_rate_is_rejected() {
        generate(1, 10, 0.0, &[1.0]);
    }

    #[test]
    fn validate_rate_returns_typed_errors() {
        assert!(validate_rate("r", 100.0).is_ok());
        assert!(validate_rate("r", MIN_RATE).is_ok());
        let zero = validate_rate("arrival rate", 0.0).unwrap_err();
        assert_eq!(zero.reason, "not positive");
        assert!(zero.to_string().contains("arrival rate"));
        assert_eq!(validate_rate("r", -5.0).unwrap_err().reason, "not positive");
        assert_eq!(
            validate_rate("r", f64::NAN).unwrap_err().reason,
            "not a number"
        );
        assert_eq!(
            validate_rate("r", f64::INFINITY).unwrap_err().reason,
            "not finite"
        );
        // Subnormal and tiny-normal rates: the exponential gap would
        // round through infinity and silently saturate `as u64`.
        assert!(validate_rate("r", f64::MIN_POSITIVE / 2.0).is_err());
        assert!(validate_rate("r", 1e-300).is_err());
    }
}
