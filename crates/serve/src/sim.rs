//! The serving event loop: a deterministic discrete-event simulation.
//!
//! Requests flow through four stations, every timestamp an integer
//! virtual nanosecond:
//!
//! ```text
//! arrival ──▶ per-model admission queue ──▶ ready FIFO ──▶ replica
//!              (WindowBatcher close rule)   (dispatch)     (service)
//! ```
//!
//! * **Admission**: an arriving request is shed if the number of
//!   admitted-but-unstarted requests has reached the queue bound;
//!   otherwise it joins its model's queue. A batch closes when the
//!   window since its head's arrival expires or the batch fills
//!   ([`WindowBatcher`]'s rule).
//! * **Dispatch**: closed batches wait in one FIFO; whenever a replica
//!   frees up, the earliest batch that *can* start is assigned with
//!   model affinity ([`crate::WarmPool::pick`]): a free slot holding
//!   its model (warm hit), waiting out a busy resident slot instead of
//!   evicting a peer, or the least-recently-used free slot when the
//!   model is resident nowhere (cold start).
//! * **Service**: the batch runs on the slot's session executor
//!   ([`crate::WarmPool::service`]); the slot is busy until the
//!   simulated service duration elapses.
//!
//! Event ordering is total: keys are `(time, kind-priority, sequence)`
//! with replica releases before arrivals before graph ingests before
//! batch closes at equal times (`ReplicaFree < Arrival < Ingest <
//! BatchClose`), so a freed slot is reusable by a same-instant arrival,
//! a same-instant ingest is visible to the batch that closes then, and
//! a zero-window batch closes after its own arrival. No hash map
//! participates in any decision — identical inputs replay identical
//! schedules bit for bit.
//!
//! In streaming mode ([`crate::serve_streaming`]) a fourth event class,
//! [`Ev::Ingest`], feeds live edge events through the shared
//! [`StreamingState`]: appends, memory updates and compactions are
//! priced on the ingest clock, and every dispatched batch first pays a
//! host-side sampling stage on that same clock before its replica
//! service starts — the freshness-vs-latency contention the streaming
//! benchmarks measure.

use std::collections::{BTreeMap, VecDeque};

use dgnn_device::DurationNs;
use dgnn_graph::WindowBatcher;

use crate::pool::WarmPool;
use crate::report::{ServeReport, ServedBatch, ServedRequest};
use crate::streaming::StreamingState;
use crate::workload::{generate, Request};
use crate::{ServeConfig, ServedModel};

/// Event kinds, in tie-break priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A replica finished its service (or its provisioning).
    ReplicaFree(usize),
    /// A request arrives.
    Arrival(usize),
    /// A live graph event arrives for ingestion (streaming mode only).
    Ingest(usize),
    /// A batch window expires for a model queue; the token guards
    /// against firing on a queue that already closed by capacity.
    BatchClose { model: usize, token: u64 },
}

impl Ev {
    fn priority(&self) -> u8 {
        match self {
            Ev::ReplicaFree(_) => 0,
            Ev::Arrival(_) => 1,
            Ev::Ingest(_) => 2,
            Ev::BatchClose { .. } => 3,
        }
    }
}

/// Everything a serving run produced: the report plus the raw records
/// and the replica sessions for post-hoc auditing.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Aggregated statistics.
    pub report: ServeReport,
    /// Per-request records of served requests, in arrival order.
    pub requests: Vec<ServedRequest>,
    /// Requests rejected by backpressure, in arrival order.
    pub shed: Vec<Request>,
    /// Per-batch service records, in dispatch order.
    pub batches: Vec<ServedBatch>,
    /// One session executor per replica slot, in slot order. Audit
    /// them with `dgnn_analysis::audit` when tracing was enabled.
    pub sessions: Vec<dgnn_device::Executor>,
}

/// A closed batch waiting for a replica.
#[derive(Debug)]
struct PendingBatch {
    model: usize,
    members: Vec<usize>,
    ready: DurationNs,
}

/// Runs the serving simulation to completion.
///
/// # Panics
///
/// Panics on an invalid configuration (empty mix, zero pool/rate) or
/// when a model service fails.
pub fn serve(cfg: &ServeConfig, zoo: &[ServedModel]) -> ServeOutcome {
    serve_with_streaming(cfg, zoo, None)
}

/// The full event loop, optionally threading live-ingestion state
/// (entry point: [`crate::serve_streaming`]).
pub(crate) fn serve_with_streaming(
    cfg: &ServeConfig,
    zoo: &[ServedModel],
    mut streaming: Option<&mut StreamingState>,
) -> ServeOutcome {
    assert!(!zoo.is_empty(), "model mix must not be empty");
    let weights: Vec<f64> = zoo.iter().map(|m| m.weight).collect();
    let requests = generate(cfg.seed, cfg.n_requests, cfg.arrival_rate_rps, &weights);
    let batcher = WindowBatcher::new(cfg.batch_window.as_nanos(), cfg.max_batch);

    let mut pool = WarmPool::new(cfg.pool_size, cfg.spec.clone(), cfg.mode, cfg.trace);

    // Event queue: (time, priority, seq) → event. BTreeMap gives a
    // deterministic total order.
    let mut events: BTreeMap<(u64, u8, u64), Ev> = BTreeMap::new();
    let mut seq = 0u64;
    let push = |events: &mut BTreeMap<(u64, u8, u64), Ev>, seq: &mut u64, t: DurationNs, ev: Ev| {
        *seq += 1;
        events.insert((t.as_nanos(), ev.priority(), *seq), ev);
    };

    // Provision the pool at t = 0; slots free when their init completes.
    for (slot, done) in pool.provision(zoo).into_iter().enumerate() {
        push(&mut events, &mut seq, done, Ev::ReplicaFree(slot));
    }
    let provision = pool.provision_phases();

    for r in &requests {
        push(&mut events, &mut seq, r.arrival, Ev::Arrival(r.id));
    }
    if let Some(state) = streaming.as_deref() {
        for (i, &at) in state.ingest_arrivals().iter().enumerate() {
            push(&mut events, &mut seq, at, Ev::Ingest(i));
        }
    }

    // Per-model admission queues + open-batch window tokens.
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); zoo.len()];
    let mut open_token: Vec<Option<u64>> = vec![None; zoo.len()];
    let mut ready: VecDeque<PendingBatch> = VecDeque::new();
    let mut queued = 0usize; // admitted but not yet dispatched

    let mut served: Vec<ServedRequest> = Vec::new();
    let mut shed: Vec<Request> = Vec::new();
    let mut batches: Vec<ServedBatch> = Vec::new();
    let mut dispatch_seq = 0u64;

    while let Some((&key, &ev)) = events.iter().next() {
        events.remove(&key);
        let now = DurationNs::from_nanos(key.0);
        match ev {
            Ev::Arrival(id) => {
                let req = requests[id];
                if queued >= cfg.queue_bound {
                    shed.push(req);
                    continue;
                }
                queued += 1;
                let q = &mut queues[req.model];
                q.push_back(id);
                if batcher.is_full(q.len()) {
                    // Capacity close: dispatchable immediately.
                    open_token[req.model] = None;
                    close_batch(req.model, now, &mut queues, &mut ready, &batcher);
                    try_dispatch(
                        now,
                        cfg,
                        zoo,
                        &mut pool,
                        &mut ready,
                        &mut queued,
                        &mut dispatch_seq,
                        &requests,
                        &mut served,
                        &mut batches,
                        &mut events,
                        &mut seq,
                        &mut streaming,
                    );
                } else if q.len() == 1 {
                    // New anchor: schedule the window close.
                    seq += 1;
                    let token = seq;
                    open_token[req.model] = Some(token);
                    let deadline = DurationNs::from_nanos(batcher.deadline(now.as_nanos()));
                    let ev = Ev::BatchClose {
                        model: req.model,
                        token,
                    };
                    events.insert((deadline.as_nanos(), ev.priority(), token), ev);
                }
            }
            Ev::BatchClose { model, token } => {
                if open_token[model] != Some(token) {
                    continue; // stale: the batch already closed by capacity
                }
                open_token[model] = None;
                close_batch(model, now, &mut queues, &mut ready, &batcher);
                try_dispatch(
                    now,
                    cfg,
                    zoo,
                    &mut pool,
                    &mut ready,
                    &mut queued,
                    &mut dispatch_seq,
                    &requests,
                    &mut served,
                    &mut batches,
                    &mut events,
                    &mut seq,
                    &mut streaming,
                );
            }
            Ev::Ingest(i) => {
                let state = streaming
                    .as_deref_mut()
                    .expect("ingest events are only scheduled in streaming mode");
                state.ingest(i, now);
            }
            Ev::ReplicaFree(slot) => {
                pool.mark_free(slot);
                try_dispatch(
                    now,
                    cfg,
                    zoo,
                    &mut pool,
                    &mut ready,
                    &mut queued,
                    &mut dispatch_seq,
                    &requests,
                    &mut served,
                    &mut batches,
                    &mut events,
                    &mut seq,
                    &mut streaming,
                );
            }
        }
    }

    assert!(
        ready.is_empty() && queues.iter().all(VecDeque::is_empty),
        "serving loop terminated with work still queued"
    );

    served.sort_by_key(|r| r.id);
    let report = ServeReport::build(
        cfg,
        &requests,
        &served,
        &shed,
        &batches,
        &provision,
        pool.cold_starts(),
        pool.cache_stats(),
        pool.cache_class_stats(),
    );
    ServeOutcome {
        report,
        requests: served,
        shed,
        batches,
        sessions: pool.into_sessions(),
    }
}

/// Drains up to one batch from a model queue into the ready FIFO.
fn close_batch(
    model: usize,
    now: DurationNs,
    queues: &mut [VecDeque<usize>],
    ready: &mut VecDeque<PendingBatch>,
    batcher: &WindowBatcher,
) {
    let q = &mut queues[model];
    debug_assert!(!q.is_empty(), "closing an empty batch");
    let take = q.len().min(batcher.max_batch);
    let members: Vec<usize> = q.drain(..take).collect();
    ready.push_back(PendingBatch {
        model,
        members,
        ready: now,
    });
}

/// Starts ready batches on free replicas (FIFO with affinity skip).
#[allow(clippy::too_many_arguments)] // event-loop state is deliberately flat
fn try_dispatch(
    now: DurationNs,
    cfg: &ServeConfig,
    zoo: &[ServedModel],
    pool: &mut WarmPool,
    ready: &mut VecDeque<PendingBatch>,
    queued: &mut usize,
    dispatch_seq: &mut u64,
    requests: &[Request],
    served: &mut Vec<ServedRequest>,
    batches: &mut Vec<ServedBatch>,
    events: &mut BTreeMap<(u64, u8, u64), Ev>,
    seq: &mut u64,
    streaming: &mut Option<&mut StreamingState>,
) {
    // Earliest-ready batch that can start now. Affinity can block the
    // head (its model's slot is busy) without blocking later batches
    // whose slots are free; within one model, ready order is FIFO so
    // requests never overtake each other.
    while let Some((pos, slot)) = ready
        .iter()
        .enumerate()
        .find_map(|(i, b)| pool.pick(b.model).map(|(slot, _cold)| (i, slot)))
    {
        let batch = ready.remove(pos).expect("index from enumerate");
        *dispatch_seq += 1;
        // Streaming: the batch first pays host-side sampling on the
        // shared ingest clock (contending with live appends), reading a
        // snapshot capped at the events visible right now.
        let (sampling, staleness) = match streaming.as_deref_mut() {
            Some(state) => state.sample_batch(now, &batch.members, requests),
            None => (DurationNs::ZERO, Vec::new()),
        };
        let record = pool.service(slot, batch.model, zoo, batch.members.len(), *dispatch_seq);
        let completed = now + sampling + record.duration;
        *queued -= batch.members.len();

        let batch_id = batches.len();
        for (pos_in_batch, &id) in batch.members.iter().enumerate() {
            served.push(ServedRequest {
                id,
                model: batch.model,
                arrival: requests[id].arrival,
                batch: batch_id,
                assembled: batch.ready,
                started: now,
                completed,
                cold: record.cold,
                staleness: staleness
                    .get(pos_in_batch)
                    .copied()
                    .unwrap_or(DurationNs::ZERO),
            });
        }
        batches.push(ServedBatch {
            model: batch.model,
            requests: batch.members,
            ready: batch.ready,
            started: now,
            completed,
            cold: record.cold,
            replica: record.replica,
            phases: record.phases,
            summary: record.summary,
        });
        *seq += 1;
        events.insert(
            (completed.as_nanos(), Ev::ReplicaFree(slot).priority(), *seq),
            Ev::ReplicaFree(slot),
        );
        let _ = cfg;
    }
}
