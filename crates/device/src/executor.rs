//! The execution engine: a shared virtual clock, with optional stream
//! forks for pipelined schedules.
//!
//! The profiled frameworks execute DGNN inference as a strict sequence —
//! sample on the CPU, copy over PCIe, launch kernels, copy back — and that
//! serialization is the root of the paper's temporal-dependency and
//! workload-imbalance bottlenecks. By default [`Executor`] models exactly
//! that: every priced action advances a single clock, and timelines are a
//! serial tape.
//!
//! To quantify the paper's proposed mitigations (§5: pipelining, transfer
//! batching) the executor can *fork* into three CUDA-style lanes
//! ([`StreamId::Host`], [`StreamId::Copy`], [`StreamId::Compute`]) with
//! independent clocks, ordered across lanes only by recorded events
//! ([`Executor::record_event`] / [`Executor::wait_event`]). While no fork
//! is active the engine is bit-identical to the historical sequential
//! implementation — every existing timeline invariant holds unchanged.

use crate::cache::{
    accumulate_class_stats, CacheStats, ClassCacheStats, FeatureCache, TensorClass,
};
use crate::event::{EventCategory, Place, TimelineEvent, TransferDir};
use crate::kernel::{HostWork, KernelDesc, KernelKind};
use crate::memory::MemoryTracker;
use crate::spec::{DeviceId, PeerPath, PlatformSpec, TransferMode};
use crate::stream::{EventId, StreamId, StreamSet};
use crate::time::DurationNs;
use crate::timeline::Timeline;
use crate::trace::{AccessKind, ExecTrace, TensorId, TraceRecord};
use crate::warmup::WarmupModel;

/// Whether inference runs entirely on the CPU or offloads kernels to the
/// simulated GPU (the paper's two measurement configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// All kernels on the CPU; no transfers, no GPU warm-up.
    CpuOnly,
    /// Kernels on the GPU; host work on the CPU; PCIe between them.
    Gpu,
}

/// A closed profiler scope: the simulated PyTorch Profiler record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeRecord {
    /// Slash-joined scope path, e.g. `"inference/sampling"`.
    pub path: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Scope entry time.
    pub start: DurationNs,
    /// Scope exit time.
    pub end: DurationNs,
}

/// Open-scope handle returned by [`Executor::enter_scope`]; must be passed
/// back to [`Executor::exit_scope`] to close the span.
#[derive(Debug)]
pub(crate) struct ScopeToken {
    path: String,
    depth: usize,
    start: DurationNs,
}

impl ScopeRecord {
    /// Scope duration.
    pub fn duration(&self) -> DurationNs {
        self.end - self.start
    }

    /// Final path component (the scope's own name).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// The simulated runtime: prices kernels, host work, transfers and warm-up
/// against the [`PlatformSpec`], advancing a virtual clock and recording a
/// timeline plus profiler scopes.
///
/// ```
/// use dgnn_device::{ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, TransferDir};
///
/// let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
/// ex.scope("inference", |ex| {
///     ex.host(HostWork::irregular("sampling", 10_000, 1 << 16));
///     ex.transfer(TransferDir::H2D, 1 << 16);
///     ex.launch(KernelDesc::gemm("attn", 128, 64, 128)); // pays context init first
/// });
/// // Everything was priced on one serial clock and recorded in order.
/// assert_eq!(ex.timeline().len(), 4);
/// assert_eq!(ex.now(), ex.timeline().span_end());
/// assert_eq!(ex.scopes().len(), 1);
/// ```
#[derive(Debug)]
pub struct Executor {
    spec: PlatformSpec,
    mode: ExecMode,
    clock: DurationNs,
    timeline: Timeline,
    scopes: Vec<ScopeRecord>,
    scope_stack: Vec<String>,
    cpu_mem: MemoryTracker,
    gpu_mem: MemoryTracker,
    context_ready: bool,
    /// Per-lane clocks while a stream fork is active; `None` otherwise.
    streams: Option<StreamSet>,
    /// Lane that priced actions are currently issued on (inside
    /// [`Executor::on_stream`]); `None` targets the serial clock.
    current_stream: Option<StreamId>,
    /// Causal provenance log for the timeline sanitizer; `None` (the
    /// default) records nothing and costs one branch per action.
    trace: Option<ExecTrace>,
    /// Host-memory regime PCIe transfers are priced under. `Pinned`
    /// (the default) is bit-identical to the historical pricing.
    transfer_mode: TransferMode,
    /// Row capacity of the feature cache; `None` (the default) means
    /// every fetch prices its H2D crossing, exactly as before.
    cache_capacity: Option<usize>,
    /// Per-device feature caches (shard-local by construction: each
    /// device caches only the rows fetched while it was current). Grown
    /// lazily as devices are probed; empty while caching is disabled.
    feature_caches: Vec<FeatureCache>,
    /// GPU that priced actions currently target (0 outside
    /// [`Executor::on_device`], i.e. the historical single-GPU path).
    current_device: DeviceId,
}

impl Executor {
    /// Creates an executor at time zero.
    pub fn new(spec: PlatformSpec, mode: ExecMode) -> Self {
        Executor {
            spec,
            mode,
            clock: DurationNs::ZERO,
            timeline: Timeline::new(),
            scopes: Vec::new(),
            scope_stack: Vec::new(),
            cpu_mem: MemoryTracker::new(),
            gpu_mem: MemoryTracker::new(),
            // CPU-only runs never pay GPU warm-up.
            context_ready: mode == ExecMode::CpuOnly,
            streams: None,
            current_stream: None,
            trace: None,
            transfer_mode: TransferMode::default(),
            cache_capacity: None,
            feature_caches: Vec::new(),
            current_device: 0,
        }
    }

    /// Selects the host-memory regime PCIe transfers are priced under
    /// (see [`TransferMode`]). `Pinned` — the default — reproduces the
    /// historical pricing bit-for-bit; `Pageable` adds the staging-
    /// buffer copy, degraded DMA bandwidth and per-transfer host
    /// metadata overhead of unpinned host buffers.
    pub fn set_transfer_mode(&mut self, mode: TransferMode) {
        self.transfer_mode = mode;
    }

    /// The host-memory regime transfers are currently priced under.
    pub fn transfer_mode(&self) -> TransferMode {
        self.transfer_mode
    }

    /// Switches on the device-resident feature cache with room for
    /// `capacity_rows` rows *per device* (see [`FeatureCache`]; each GPU
    /// owns a shard-local cache — rows fetched while a device is current
    /// are resident on that device only). Idempotent: calling it again
    /// with the same capacity preserves the warm caches — a serving
    /// replica that enables it per request keeps its hot rows across
    /// requests. A different capacity rebuilds every cache empty.
    pub fn enable_feature_cache(&mut self, capacity_rows: usize) {
        if self.cache_capacity != Some(capacity_rows) {
            self.cache_capacity = Some(capacity_rows);
            self.feature_caches = vec![FeatureCache::new(capacity_rows)];
        }
    }

    /// Device 0's feature cache (`None` while disabled).
    pub fn feature_cache(&self) -> Option<&FeatureCache> {
        self.cache_capacity.and(self.feature_caches.first())
    }

    /// The feature cache of a specific device (`None` while disabled or
    /// before the device's first probe).
    pub fn device_feature_cache(&self, device: DeviceId) -> Option<&FeatureCache> {
        self.cache_capacity.and(self.feature_caches.get(device))
    }

    /// Hit/miss/eviction counters summed over every device's feature
    /// cache (all zero while disabled).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.feature_caches {
            total.accumulate(&c.stats());
        }
        total
    }

    /// Per-[`TensorClass`] cache counters summed over every device's
    /// feature cache (all zero while disabled).
    pub fn cache_class_stats(&self) -> ClassCacheStats {
        let mut total = ClassCacheStats::default();
        for c in &self.feature_caches {
            accumulate_class_stats(&mut total, c.class_stats());
        }
        total
    }

    /// Probes the current device's feature cache for `(class, key)`,
    /// inserting the row on a miss and balancing GPU memory (insert
    /// allocates `row_bytes`, an eviction frees the victim's bytes).
    /// Returns whether the probe hit — `false` (a priced fetch)
    /// whenever the cache is disabled. Dispatcher hook; pricing of miss
    /// traffic is the caller's job.
    pub(crate) fn cache_probe_insert(
        &mut self,
        class: TensorClass,
        key: u64,
        row_bytes: u64,
    ) -> bool {
        let Some(capacity) = self.cache_capacity else {
            return false;
        };
        while self.feature_caches.len() <= self.current_device {
            self.feature_caches.push(FeatureCache::new(capacity));
        }
        let (hit, evicted_bytes) =
            self.feature_caches[self.current_device].probe_insert(class, key, row_bytes);
        if !hit {
            self.gpu_mem.alloc(row_bytes);
            self.gpu_mem.free(evicted_bytes);
        }
        hit
    }

    /// Switches on provenance tracing: from here on, every tensor
    /// access, residence crossing, transfer, fork/join and event
    /// record/wait is appended to the causal log the timeline sanitizer
    /// consumes. Pricing, timelines and scopes are unaffected.
    /// Idempotent; an already-collected trace is preserved.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(ExecTrace::new());
        }
    }

    /// Whether provenance tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The causal provenance log collected so far (`None` while tracing
    /// is off).
    pub fn trace(&self) -> Option<&ExecTrace> {
        self.trace.as_ref()
    }

    /// Logs a tensor access on the current lane (dispatcher hook).
    pub(crate) fn trace_access(&mut self, tensor: TensorId, kind: AccessKind, place: Place) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::Access {
                tensor,
                kind,
                lane: self.current_stream,
                place,
                at_event: self.timeline.len(),
            });
        }
    }

    /// Logs a residence-crossing intent (dispatcher hook).
    pub(crate) fn trace_crossing(
        &mut self,
        tensor: Option<TensorId>,
        dir: TransferDir,
        bytes: u64,
        staged: bool,
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::Crossing {
                tensor,
                dir,
                bytes,
                lane: self.current_stream,
                staged,
                at_event: self.timeline.len(),
            });
        }
    }

    /// Logs a coalesced-flush pricing (dispatcher hook).
    pub(crate) fn trace_flush(&mut self, dir: TransferDir, bytes: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::Flush {
                dir,
                bytes,
                lane: self.current_stream,
                at_event: self.timeline.len(),
            });
        }
    }

    /// Logs one aggregated feature-cache fetch result: `rows` rows
    /// (`bytes` bytes) of `class` served device-resident, skipping
    /// their H2D crossing (dispatcher hook).
    pub(crate) fn trace_cache_hit(&mut self, class: TensorClass, rows: u64, bytes: u64) {
        let at_event = self.timeline.len();
        let lane = self.current_stream;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::CacheHit {
                class,
                rows,
                bytes,
                lane,
                at_event,
            });
        }
    }

    /// Logs a cross-device fetch intent: `bytes` owned by `src` needed
    /// on the current device (dispatcher hook). RULE8 pairs these
    /// crossings with [`TraceRecord::PeerPriced`] pricing twins.
    pub(crate) fn trace_peer_crossing(&mut self, src: DeviceId, bytes: u64) {
        let dst = self.current_device;
        let at_event = self.timeline.len();
        let lane = self.current_stream;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::PeerCrossing {
                src,
                dst,
                bytes,
                lane,
                at_event,
            });
        }
    }

    /// Logs an explicit device-buffer release (dispatcher hook).
    pub(crate) fn trace_release(&mut self, tensor: TensorId) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::Release {
                tensor,
                lane: self.current_stream,
                at_event: self.timeline.len(),
            });
        }
    }

    /// Logs one streaming-graph append: ingest event `event` of store
    /// `store` (timestamp bits `time_bits`) became readable at
    /// `visible_at` on this session's clock. Called by the serving
    /// layer after pricing the append's Host-lane work; a no-op while
    /// tracing is off. `dgnn-analysis` RULE7 checks that watermarks and
    /// visibility are monotone and that samples over a prefix are
    /// ordered after every append inside it.
    pub fn trace_graph_append(
        &mut self,
        store: u64,
        event: usize,
        time_bits: u64,
        visible_at: DurationNs,
    ) {
        let at_event = self.timeline.len();
        let lane = self.current_stream;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::GraphAppend {
                store,
                event,
                time_bits,
                visible_at,
                lane,
                at_event,
            });
        }
    }

    /// Logs one streaming-graph sampling read: a snapshot exposing the
    /// first `visible` events of store `store`, read starting at `at`
    /// on this session's clock. Called by the serving layer when it
    /// prices query sampling; a no-op while tracing is off.
    pub fn trace_graph_sample(&mut self, store: u64, visible: usize, at: DurationNs) {
        let at_event = self.timeline.len();
        let lane = self.current_stream;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::GraphSample {
                store,
                visible,
                at,
                lane,
                at_event,
            });
        }
    }

    /// Current simulated time on the serial clock. Inside a stream fork
    /// this is the fork origin; lanes are queried with
    /// [`Executor::stream_now`] and folded back by
    /// [`Executor::join_streams`].
    pub fn now(&self) -> DurationNs {
        self.clock
    }

    /// The clock the next priced action would start at: the active lane's
    /// clock (on the current device) inside [`Executor::on_stream`], the
    /// serial clock otherwise.
    fn cursor(&self) -> DurationNs {
        match (self.current_stream, &self.streams) {
            (Some(lane), Some(s)) => s.clock(self.current_device, lane),
            _ => self.clock,
        }
    }

    /// Current virtual time of a lane on the current device (the serial
    /// clock when no fork is active).
    pub fn stream_now(&self, lane: StreamId) -> DurationNs {
        match &self.streams {
            Some(s) => s.clock(self.current_device, lane),
            None => self.clock,
        }
    }

    /// Whether a stream fork is active.
    pub fn streams_active(&self) -> bool {
        self.streams.is_some()
    }

    /// Forks the timeline into the three execution lanes, each starting at
    /// the current serial clock. Until [`Executor::join_streams`], work
    /// issued inside [`Executor::on_stream`] advances only its lane.
    ///
    /// Cross-lane ordering is expressed with [`Executor::record_event`] /
    /// [`Executor::wait_event`]; the join advances the serial clock to
    /// the forked region's makespan:
    ///
    /// ```
    /// use dgnn_device::{ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, StreamId};
    ///
    /// let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    /// ex.ensure_context(); // pay warm-up outside the forked region
    /// ex.fork_streams();
    /// let sampled = ex.on_stream(StreamId::Host, |ex| {
    ///     ex.host(HostWork::irregular("sample", 50_000, 1 << 18));
    ///     ex.record_event(StreamId::Host)
    /// });
    /// // The kernel must not start before sampling finished…
    /// ex.wait_event(StreamId::Compute, sampled);
    /// let host_done = ex.stream_now(StreamId::Host);
    /// ex.on_stream(StreamId::Compute, |ex| {
    ///     ex.launch(KernelDesc::gemm("attn", 128, 64, 128));
    /// });
    /// let end = ex.join_streams();
    /// // …so the makespan covers sampling plus the kernel.
    /// assert!(end > host_done);
    /// assert_eq!(ex.now(), end);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when a fork is already active (forks do not nest).
    pub fn fork_streams(&mut self) {
        self.fork_streams_multi(1);
    }

    /// Forks the timeline into `devices × 3` lanes: each of the first
    /// `devices` GPUs gets its own Host/Copy/Compute lane triple, all
    /// starting at the current serial clock. `fork_streams` is the
    /// single-device case — a one-device fork is bit-identical to the
    /// historical engine. Lane work targets the current device (see
    /// [`Executor::on_device`]); events recorded on any device's lane
    /// can be waited on from any other, which is how sharded drivers
    /// express cross-device barriers.
    ///
    /// # Panics
    ///
    /// Panics when a fork is already active, when `devices` is zero, or
    /// when `devices` exceeds the platform's GPU count.
    pub fn fork_streams_multi(&mut self, devices: usize) {
        assert!(self.streams.is_none(), "stream fork already active");
        assert!(
            devices <= self.n_devices(),
            "fork spans {devices} devices but the platform has {}",
            self.n_devices()
        );
        self.streams = Some(StreamSet::forked_at_devices(self.clock, devices));
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::Fork { at: self.clock });
        }
    }

    /// Ends the stream fork: the serial clock advances to the latest lane
    /// clock (the makespan of the forked region) and returns it.
    ///
    /// # Panics
    ///
    /// Panics when no fork is active or a lane closure is still running.
    pub fn join_streams(&mut self) -> DurationNs {
        assert!(
            self.current_stream.is_none(),
            "cannot join streams inside on_stream"
        );
        let s = self
            .streams
            .take()
            .expect("join_streams without fork_streams");
        let end = s.max_clock().max(self.clock);
        self.clock = end;
        if let Some(t) = self.trace.as_mut() {
            let mut lane_clocks = Vec::with_capacity(s.devices() * 3);
            for device in 0..s.devices() {
                for lane in StreamId::ALL {
                    lane_clocks.push(s.clock(device, lane));
                }
            }
            t.push(TraceRecord::Join {
                at: end,
                lane_clocks,
            });
        }
        end
    }

    /// Runs `f` with every priced action placed on `lane`. Nesting is
    /// allowed; the innermost lane wins.
    ///
    /// # Panics
    ///
    /// Panics when no stream fork is active.
    pub fn on_stream<R>(&mut self, lane: StreamId, f: impl FnOnce(&mut Self) -> R) -> R {
        assert!(self.streams.is_some(), "on_stream requires fork_streams");
        let prev = self.current_stream.replace(lane);
        let result = f(self);
        self.current_stream = prev;
        result
    }

    /// Swaps the lane priced actions are issued on, returning the previous
    /// one. Used by wrappers (the dispatcher) that cannot express the lane
    /// as a closure over `&mut Executor`.
    pub(crate) fn swap_current_stream(&mut self, lane: Option<StreamId>) -> Option<StreamId> {
        assert!(
            lane.is_none() || self.streams.is_some(),
            "placing work on a lane requires fork_streams"
        );
        std::mem::replace(&mut self.current_stream, lane)
    }

    /// Number of GPUs in the platform's device graph (1 in CPU-only
    /// mode: there is no accelerator to shard over).
    pub fn n_devices(&self) -> usize {
        match self.mode {
            ExecMode::CpuOnly => 1,
            ExecMode::Gpu => self.spec.n_gpus(),
        }
    }

    /// The GPU priced actions currently target (0 outside
    /// [`Executor::on_device`]).
    pub fn current_device(&self) -> DeviceId {
        self.current_device
    }

    /// Runs `f` with every priced action attributed to GPU `device`:
    /// timeline events carry the device tag, lane-placed work advances
    /// that device's lane clocks, kernels price against that device's
    /// spec, and feature-cache probes hit its shard-local cache.
    /// Nesting is allowed; the innermost device wins. Device 0 with no
    /// fork is exactly the historical engine.
    ///
    /// # Panics
    ///
    /// Panics when `device` is outside the platform's device graph, or
    /// when a fork is active that does not span `device`.
    pub fn on_device<R>(&mut self, device: DeviceId, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.swap_current_device(device);
        let result = f(self);
        self.swap_current_device(prev);
        result
    }

    /// Swaps the device priced actions target, returning the previous
    /// one. Used by wrappers (the dispatcher) that cannot express the
    /// switch as a closure over `&mut Executor`.
    pub(crate) fn swap_current_device(&mut self, device: DeviceId) -> DeviceId {
        assert!(
            device < self.n_devices(),
            "device {device} outside the platform's {} GPU(s)",
            self.n_devices()
        );
        if let Some(s) = &self.streams {
            assert!(
                device < s.devices(),
                "device {device} outside the active fork's {} device(s)",
                s.devices()
            );
        }
        let prev = std::mem::replace(&mut self.current_device, device);
        if prev != device {
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceRecord::DeviceSwitch { device });
            }
        }
        prev
    }

    /// Records `lane`'s current clock as a waitable synchronization point
    /// (the simulated `cudaEventRecord`).
    ///
    /// # Panics
    ///
    /// Panics when no stream fork is active.
    pub fn record_event(&mut self, lane: StreamId) -> EventId {
        let device = self.current_device;
        let id = self
            .streams
            .as_mut()
            .expect("record_event requires fork_streams")
            .record(device, lane);
        if self.trace.is_some() {
            let at = self.stream_now(lane);
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceRecord::EventRecord {
                    event: id.index(),
                    lane,
                    at,
                });
            }
        }
        id
    }

    /// Stalls `lane` until the recorded event's timestamp (the simulated
    /// `cudaStreamWaitEvent`): the lane clock advances to the max of its
    /// dependencies and never rewinds.
    ///
    /// # Panics
    ///
    /// Panics when no stream fork is active, or when the event was
    /// recorded by a different fork — an earlier fork of this executor,
    /// or another executor entirely. Such a handle would otherwise
    /// advance the lane from an unrelated fork's timestamp table.
    pub fn wait_event(&mut self, lane: StreamId, event: EventId) {
        let device = self.current_device;
        self.streams
            .as_mut()
            .expect("wait_event requires fork_streams")
            .wait(device, lane, event);
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord::EventWait {
                event: event.index(),
                lane,
            });
        }
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Platform specification.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// The recorded kernel/transfer timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// All closed profiler scopes.
    pub fn scopes(&self) -> &[ScopeRecord] {
        &self.scopes
    }

    /// GPU memory accounting.
    pub fn gpu_memory(&self) -> &MemoryTracker {
        &self.gpu_mem
    }

    /// CPU memory accounting.
    pub fn cpu_memory(&self) -> &MemoryTracker {
        &self.cpu_mem
    }

    /// Memory tracker for the device kernels execute on.
    pub fn compute_memory(&self) -> &MemoryTracker {
        match self.mode {
            ExecMode::CpuOnly => &self.cpu_mem,
            ExecMode::Gpu => &self.gpu_mem,
        }
    }

    fn current_path(&self) -> String {
        self.scope_stack.join("/")
    }

    /// Opens a named profiler scope and returns a token for
    /// [`Executor::exit_scope`]. Used by wrappers (the dispatcher) that
    /// cannot express the scope as a closure over `&mut Executor`.
    pub(crate) fn enter_scope(&mut self, name: &str) -> ScopeToken {
        self.scope_stack.push(name.to_string());
        ScopeToken {
            path: self.current_path(),
            depth: self.scope_stack.len() - 1,
            start: self.cursor(),
        }
    }

    /// Closes the scope opened with the given token, recording its span.
    pub(crate) fn exit_scope(&mut self, token: ScopeToken) {
        let end = self.cursor();
        self.scope_stack.pop();
        self.scopes.push(ScopeRecord {
            path: token.path,
            depth: token.depth,
            start: token.start,
            end,
        });
    }

    /// Runs `f` inside a named profiler scope; nesting builds slash paths.
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let token = self.enter_scope(name);
        let result = f(self);
        self.exit_scope(token);
        result
    }

    /// Runs `f` and returns its result together with the simulated time it
    /// consumed.
    pub fn timed<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, DurationNs) {
        let start = self.cursor();
        let result = f(self);
        (result, self.cursor() - start)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_event(
        &mut self,
        label: &'static str,
        category: EventCategory,
        place: Place,
        duration: DurationNs,
        occupancy: f64,
        flops: u64,
        bytes: u64,
    ) {
        let start = self.cursor();
        let end = start + duration;
        self.timeline.push(TimelineEvent {
            label,
            scope: self.current_path(),
            category,
            place,
            start,
            end,
            occupancy,
            flops,
            bytes,
            stream: self.current_stream,
            device: self.current_device,
        });
        match (self.current_stream, &mut self.streams) {
            (Some(lane), Some(s)) => *s.clock_mut(self.current_device, lane) = end,
            _ => self.clock = end,
        }
    }

    /// Lazily initializes the CUDA context on first GPU activity
    /// (the paper's "lazy initialization" warm-up component). Returns the
    /// cost paid, which is zero after the first call and always zero in
    /// CPU-only mode.
    pub fn ensure_context(&mut self) -> DurationNs {
        if self.context_ready {
            return DurationNs::ZERO;
        }
        self.context_ready = true;
        let d = WarmupModel::context(&self.spec.gpu);
        self.push_event(
            "cuda_context_init",
            EventCategory::WarmupContext,
            Place::Gpu,
            d,
            0.0,
            0,
            0,
        );
        d
    }

    /// Whether the (simulated) CUDA context has already been
    /// initialized — `true` from construction in CPU-only mode, and
    /// after the first GPU activity otherwise.
    ///
    /// A serving layer uses this to distinguish a *warm session* (an
    /// executor reused across requests, context and weights already
    /// paid for) from a *cold start* that will pay
    /// [`Executor::ensure_context`] and [`Executor::model_init`] on its
    /// first priced action:
    ///
    /// ```
    /// use dgnn_device::{ExecMode, Executor, KernelDesc, PlatformSpec};
    ///
    /// let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    /// assert!(!ex.context_ready()); // cold: first launch pays init
    /// ex.launch(KernelDesc::gemm("k", 8, 8, 8));
    /// assert!(ex.context_ready()); // warm: reuse amortizes the cost
    /// ```
    pub fn context_ready(&self) -> bool {
        self.context_ready
    }

    /// Performs model initialization: allocates and uploads `weight_bytes`
    /// of parameters in `n_param_tensors` tensors. On the GPU this is the
    /// expensive warm-up component of Section 4.4; on the CPU it is a
    /// cheap host-memory copy. Returns the simulated cost.
    pub fn model_init(&mut self, weight_bytes: u64, n_param_tensors: u64) -> DurationNs {
        match self.mode {
            ExecMode::Gpu => {
                self.ensure_context();
                let d = WarmupModel::model_init_gpu(
                    &self.spec.gpu,
                    &self.spec.pcie,
                    weight_bytes,
                    n_param_tensors,
                );
                self.gpu_mem.alloc(weight_bytes);
                self.push_event(
                    "model_init",
                    EventCategory::WarmupModelInit,
                    Place::Gpu,
                    d,
                    0.0,
                    0,
                    weight_bytes,
                );
                d
            }
            ExecMode::CpuOnly => {
                let d = WarmupModel::model_init_cpu(&self.spec.cpu, weight_bytes, n_param_tensors);
                self.cpu_mem.alloc(weight_bytes);
                self.push_event(
                    "model_init",
                    EventCategory::WarmupModelInit,
                    Place::Cpu,
                    d,
                    0.0,
                    0,
                    weight_bytes,
                );
                d
            }
        }
    }

    /// Per-run activation allocation warm-up (the batch-dependent part of
    /// Table 2). No-op in CPU-only mode. Returns the simulated cost.
    pub fn alloc_warmup(&mut self, activation_bytes: u64) -> DurationNs {
        if self.mode == ExecMode::CpuOnly {
            self.cpu_mem.alloc(activation_bytes);
            return DurationNs::ZERO;
        }
        self.ensure_context();
        let d = WarmupModel::alloc(&self.spec.gpu, activation_bytes);
        self.gpu_mem.alloc(activation_bytes);
        self.push_event(
            "activation_alloc",
            EventCategory::WarmupAlloc,
            Place::Gpu,
            d,
            0.0,
            0,
            activation_bytes,
        );
        d
    }

    /// Releases previously allocated activation memory.
    pub fn release(&mut self, bytes: u64) {
        match self.mode {
            ExecMode::Gpu => self.gpu_mem.free(bytes),
            ExecMode::CpuOnly => self.cpu_mem.free(bytes),
        }
    }

    fn gpu_kernel_duration(&self, desc: &KernelDesc) -> (DurationNs, f64) {
        let g = self.spec.gpu_spec(self.current_device);
        let occupancy = (desc.parallelism as f64 / g.saturation_width as f64)
            .clamp(1.0 / g.sm_count as f64, 1.0);
        let compute_s = desc.flops as f64 / (g.peak_flops * g.kernel_efficiency * occupancy);
        let bw = if desc.kind.is_irregular() {
            g.mem_bw * g.irregular_efficiency
        } else {
            g.mem_bw
        };
        let memory_s = desc.bytes as f64 / bw;
        let busy = DurationNs::from_secs_f64(compute_s.max(memory_s));
        (
            DurationNs::from_nanos(g.launch_overhead_ns) + busy,
            occupancy,
        )
    }

    fn cpu_kernel_duration(&self, desc: &KernelDesc) -> (DurationNs, f64) {
        let c = &self.spec.cpu;
        let occupancy =
            (desc.parallelism as f64 / c.saturation_width as f64).clamp(1.0 / c.cores as f64, 1.0);
        let compute_s = desc.flops as f64 / (c.peak_flops * c.kernel_efficiency * occupancy);
        let bw = if desc.kind.is_irregular() {
            c.mem_bw * c.irregular_efficiency
        } else {
            c.mem_bw
        };
        let memory_s = desc.bytes as f64 / bw;
        let busy = DurationNs::from_secs_f64(compute_s.max(memory_s));
        (
            DurationNs::from_nanos(c.dispatch_overhead_ns) + busy,
            occupancy,
        )
    }

    /// Launches one kernel on the compute device of the current mode,
    /// advancing the clock. Returns the simulated duration (including
    /// launch/dispatch overhead).
    pub fn launch(&mut self, desc: KernelDesc) -> DurationNs {
        match self.mode {
            ExecMode::Gpu => {
                self.ensure_context();
                let (d, occ) = self.gpu_kernel_duration(&desc);
                self.push_event(
                    desc.label,
                    EventCategory::Kernel(desc.kind),
                    Place::Gpu,
                    d,
                    occ,
                    desc.flops,
                    desc.bytes,
                );
                d
            }
            ExecMode::CpuOnly => {
                let (d, occ) = self.cpu_kernel_duration(&desc);
                self.push_event(
                    desc.label,
                    EventCategory::Kernel(desc.kind),
                    Place::Cpu,
                    d,
                    occ,
                    desc.flops,
                    desc.bytes,
                );
                d
            }
        }
    }

    /// Executes host-side preprocessing work on the simulated CPU
    /// (always the CPU, in both modes). Returns the simulated duration.
    ///
    /// Serial stages (`parallelism == 1`) run on one core at
    /// `host_ops_per_sec`. Stages that declare parallel work items are
    /// charged as a critical path `total_ops / effective_cores`, where
    /// the engaged core count follows the same occupancy ramp as CPU
    /// kernels: `cores × clamp(parallelism / saturation_width,
    /// 1/cores, 1)`. Irregular bandwidth also scales with the engaged
    /// cores (memory-level parallelism), capped at the sequential peak.
    pub fn host(&mut self, work: HostWork) -> DurationNs {
        let c = &self.spec.cpu;
        let occupancy =
            (work.parallelism as f64 / c.saturation_width as f64).clamp(1.0 / c.cores as f64, 1.0);
        let effective_cores = (c.cores as f64 * occupancy).max(1.0);
        let ops_s = work.ops as f64 / (c.host_ops_per_sec * effective_cores);
        let seq_s = work.seq_bytes as f64 / c.mem_bw;
        let irr_bw = (c.mem_bw * c.irregular_efficiency * effective_cores).min(c.mem_bw);
        let irr_s = work.irregular_bytes as f64 / irr_bw;
        let d = DurationNs::from_nanos(c.dispatch_overhead_ns)
            + DurationNs::from_secs_f64(ops_s + seq_s + irr_s);
        self.push_event(
            work.label,
            EventCategory::Host,
            Place::Cpu,
            d,
            1.0,
            work.ops,
            work.seq_bytes + work.irregular_bytes,
        );
        d
    }

    /// Copies `bytes` across PCIe. Free (and unrecorded) in CPU-only mode,
    /// where no transfer exists. Returns the simulated duration.
    pub fn transfer(&mut self, dir: TransferDir, bytes: u64) -> DurationNs {
        if self.mode == ExecMode::CpuOnly {
            return DurationNs::ZERO;
        }
        self.ensure_context();
        let p = &self.spec.pcie;
        let d = match self.transfer_mode {
            // Direct DMA from page-locked memory — the historical
            // formula, reproduced exactly so pinned-mode runs are
            // bit-identical to pre-cache builds.
            TransferMode::Pinned => {
                DurationNs::from_nanos(p.latency_ns)
                    + DurationNs::from_secs_f64(bytes as f64 / p.bandwidth)
            }
            // Pageable: host memcpy into the driver's staging buffer,
            // then DMA at the degraded bandwidth, plus per-transfer
            // host metadata bookkeeping. Folded into one timeline
            // event (same label/category) — the staging copy is part
            // of the driver's cudaMemcpy, not a separate user action.
            TransferMode::Pageable => {
                DurationNs::from_nanos(p.latency_ns + p.host_meta_ns)
                    + DurationNs::from_secs_f64(
                        bytes as f64 / p.staging_bandwidth + bytes as f64 / p.pageable_bandwidth,
                    )
            }
        };
        self.push_event(
            dir.name(),
            EventCategory::Transfer(dir),
            Place::Pcie,
            d,
            1.0,
            0,
            bytes,
        );
        if self.trace.is_some() {
            let event = self.timeline.len() - 1;
            let lane = self.current_stream;
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceRecord::Priced {
                    dir,
                    bytes,
                    lane,
                    event,
                });
            }
        }
        d
    }

    /// Copies `bytes` from GPU `src` to the *current* device, priced on
    /// the interconnect edge between them: one hop over the direct peer
    /// link when the topology has one ([`PeerPath::Direct`]), or a
    /// host-staged bounce — a D2H then an H2D over the two devices'
    /// PCIe links, always from pinned staging buffers (the driver owns
    /// them) — otherwise. Free (and unrecorded) in CPU-only mode, for
    /// zero bytes, and when `src` is already the current device.
    /// Returns the simulated duration.
    ///
    /// One timeline event ([`EventCategory::PeerTransfer`], attributed
    /// to the destination device) is recorded per call, plus a
    /// [`TraceRecord::PeerPriced`] twin while tracing — the RULE8
    /// conservation evidence.
    ///
    /// # Panics
    ///
    /// Panics when `src` is outside the platform's device graph.
    pub fn peer_transfer(&mut self, src: DeviceId, bytes: u64) -> DurationNs {
        if self.mode == ExecMode::CpuOnly {
            return DurationNs::ZERO;
        }
        assert!(
            src < self.n_devices(),
            "peer source device {src} outside the platform's {} GPU(s)",
            self.n_devices()
        );
        let dst = self.current_device;
        if bytes == 0 || src == dst {
            return DurationNs::ZERO;
        }
        self.ensure_context();
        let (d, label, via_host) = match self.spec.peer_path(src, dst) {
            PeerPath::Direct(link) => (
                DurationNs::from_nanos(link.latency_ns)
                    + DurationNs::from_secs_f64(bytes as f64 / link.bandwidth),
                "peer_copy",
                false,
            ),
            PeerPath::HostStaged => {
                let p = &self.spec.pcie;
                (
                    DurationNs::from_nanos(2 * p.latency_ns)
                        + DurationNs::from_secs_f64(2.0 * bytes as f64 / p.bandwidth),
                    "peer_copy_staged",
                    true,
                )
            }
        };
        self.push_event(
            label,
            EventCategory::PeerTransfer,
            Place::Pcie,
            d,
            1.0,
            0,
            bytes,
        );
        if self.trace.is_some() {
            let event = self.timeline.len() - 1;
            let lane = self.current_stream;
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceRecord::PeerPriced {
                    src,
                    dst,
                    bytes,
                    via_host,
                    lane,
                    event,
                });
            }
        }
        d
    }

    /// Idle-waits until the clock reaches `t` (used by pipelined ablations
    /// when replaying schedules). No event is recorded; the gap is visible
    /// on the timeline as missing coverage.
    pub fn advance_to(&mut self, t: DurationNs) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Launches a "synchronization" marker: zero-work kernel representing
    /// `cudaStreamSynchronize`, charged one launch overhead.
    pub fn synchronize(&mut self) -> DurationNs {
        self.launch(KernelDesc {
            label: "cuda_synchronize",
            kind: KernelKind::Elementwise,
            flops: 0,
            bytes: 0,
            parallelism: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_executor() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::Gpu)
    }

    #[test]
    fn clock_is_monotone_across_actions() {
        let mut ex = gpu_executor();
        let t0 = ex.now();
        ex.launch(KernelDesc::gemm("k", 32, 32, 32));
        let t1 = ex.now();
        ex.transfer(TransferDir::H2D, 1024);
        let t2 = ex.now();
        ex.host(HostWork::sequential("pack", 100, 1024));
        let t3 = ex.now();
        assert!(t0 < t1 && t1 < t2 && t2 < t3);
    }

    #[test]
    fn parallel_host_work_shortens_critical_path() {
        let time_for = |parallelism: u64| {
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
            ex.host(
                HostWork::irregular("sample", 10_000_000, 1 << 24).with_parallelism(parallelism),
            );
            ex.now()
        };
        let serial = time_for(1);
        let saturated = time_for(PlatformSpec::default().cpu.saturation_width);
        // Fully saturated parallelism engages all cores on the ops term.
        assert!(
            saturated.as_nanos() * 8 < serial.as_nanos(),
            "saturated {saturated:?} should be ≫ faster than serial {serial:?}"
        );
        // Sub-core-count parallelism must never price *slower* than serial.
        assert!(time_for(4) <= serial);
    }

    #[test]
    fn serial_host_pricing_is_unchanged_by_parallelism_field() {
        let explicit = {
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
            ex.host(HostWork::irregular("sample", 5_000, 4_096).with_parallelism(1));
            ex.now()
        };
        let default = {
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
            ex.host(HostWork::irregular("sample", 5_000, 4_096));
            ex.now()
        };
        assert_eq!(explicit, default);
    }

    #[test]
    fn first_gpu_action_pays_context_init() {
        let mut ex = gpu_executor();
        ex.launch(KernelDesc::gemm("k", 8, 8, 8));
        let warmup = ex
            .timeline()
            .category_time(|c| c == EventCategory::WarmupContext);
        assert_eq!(
            warmup.as_nanos(),
            PlatformSpec::default().gpu.context_init_ns
        );
        // Second launch pays nothing extra.
        let before = ex.now();
        ex.launch(KernelDesc::gemm("k", 8, 8, 8));
        let kernel_time = ex.now() - before;
        assert!(kernel_time.as_nanos() < 100_000);
    }

    #[test]
    fn cpu_mode_has_no_warmup_or_transfers() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        ex.launch(KernelDesc::gemm("k", 8, 8, 8));
        assert_eq!(ex.transfer(TransferDir::H2D, 1 << 20), DurationNs::ZERO);
        assert_eq!(ex.timeline().busy_time(Place::Pcie), DurationNs::ZERO);
        assert_eq!(
            ex.timeline().category_time(EventCategory::is_warmup),
            DurationNs::ZERO
        );
        assert_eq!(ex.timeline().busy_time(Place::Gpu), DurationNs::ZERO);
    }

    #[test]
    fn tiny_gpu_kernels_are_launch_bound() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        let d = ex.launch(KernelDesc::gemm("tiny", 16, 16, 16));
        let launch = PlatformSpec::default().gpu.launch_overhead_ns;
        // Launch overhead must dominate: busy time < 20% of total.
        assert!(d.as_nanos() < launch * 12 / 10, "duration {d}");
    }

    #[test]
    fn large_gpu_kernels_beat_cpu() {
        let mut gpu = gpu_executor();
        gpu.ensure_context();
        let mut cpu = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let desc = KernelDesc::gemm("big", 2048, 2048, 2048);
        let dg = gpu.launch(desc.clone());
        let dc = cpu.launch(desc);
        assert!(
            dc.as_nanos() > 5 * dg.as_nanos(),
            "cpu {dc} should be ≫ gpu {dg}"
        );
    }

    #[test]
    fn irregular_kernels_pay_bandwidth_penalty() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        let regular = ex.launch(KernelDesc::elementwise("r", 1 << 20, 1, 1));
        let irregular = ex.launch(KernelDesc::gather("g", 1 << 18, 4));
        // gather moves 8 MiB at ~12% efficiency vs 8 MiB sequential.
        assert!(irregular > regular);
    }

    #[test]
    fn scopes_nest_and_record_spans() {
        let mut ex = gpu_executor();
        ex.scope("inference", |ex| {
            ex.scope("sampling", |ex| {
                ex.host(HostWork::irregular("sample", 1000, 4096));
            });
            ex.scope("attention", |ex| {
                ex.launch(KernelDesc::gemm("qk", 64, 64, 64));
            });
        });
        let paths: Vec<&str> = ex.scopes().iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"inference/sampling"));
        assert!(paths.contains(&"inference/attention"));
        assert!(paths.contains(&"inference"));
        let outer = ex.scopes().iter().find(|s| s.path == "inference").unwrap();
        let inner = ex
            .scopes()
            .iter()
            .find(|s| s.path == "inference/sampling")
            .unwrap();
        assert!(outer.start <= inner.start && inner.end <= outer.end);
        assert_eq!(inner.name(), "sampling");
    }

    #[test]
    fn events_inherit_scope_path() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        ex.scope("run", |ex| {
            ex.scope("gnn", |ex| {
                ex.launch(KernelDesc::gemm("agg", 32, 32, 32));
            });
        });
        let e = ex.timeline().events().last().unwrap();
        assert_eq!(e.scope, "run/gnn");
    }

    #[test]
    fn model_init_gpu_much_slower_than_cpu() {
        let mut gpu = gpu_executor();
        let mut cpu = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let dg = gpu.model_init(1 << 22, 30);
        let dc = cpu.model_init(1 << 22, 30);
        assert!(dg.as_nanos() > 40 * dc.as_nanos());
        assert_eq!(gpu.gpu_memory().live_bytes(), 1 << 22);
        assert_eq!(cpu.cpu_memory().live_bytes(), 1 << 22);
    }

    #[test]
    fn alloc_warmup_tracks_memory_and_grows() {
        let mut ex = gpu_executor();
        let small = ex.alloc_warmup(1 << 16);
        ex.release(1 << 16);
        let large = ex.alloc_warmup(1 << 28);
        assert!(large > small);
        assert_eq!(ex.gpu_memory().live_bytes(), 1 << 28);
    }

    #[test]
    fn timed_measures_simulated_time() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        let ((), d) = ex.timed(|ex| {
            ex.launch(KernelDesc::gemm("k", 64, 64, 64));
        });
        assert!(d.as_nanos() > 0);
        assert_eq!(
            ex.now().saturating_sub(d),
            DurationNs::from_nanos(PlatformSpec::default().gpu.context_init_ns,)
        );
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut ex = gpu_executor();
        ex.advance_to(DurationNs::from_nanos(100));
        ex.advance_to(DurationNs::from_nanos(50));
        assert_eq!(ex.now().as_nanos(), 100);
    }

    #[test]
    fn synchronize_costs_one_launch() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        let d = ex.synchronize();
        assert_eq!(d.as_nanos(), PlatformSpec::default().gpu.launch_overhead_ns);
    }

    #[test]
    fn forked_lanes_overlap_on_the_timeline() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        let origin = ex.now();
        ex.fork_streams();
        ex.on_stream(StreamId::Host, |ex| {
            ex.host(HostWork::sequential("sample", 1_000_000, 1 << 20));
        });
        ex.on_stream(StreamId::Compute, |ex| {
            ex.launch(KernelDesc::gemm("attn", 256, 256, 256));
        });
        let host_end = ex.stream_now(StreamId::Host);
        let compute_end = ex.stream_now(StreamId::Compute);
        let end = ex.join_streams();
        // Both lanes started at the fork origin: the events overlap and
        // the makespan is the max, not the sum.
        let events = ex.timeline().events();
        let host_ev = events.iter().find(|e| e.label == "sample").unwrap();
        let gemm_ev = events.iter().find(|e| e.label == "attn").unwrap();
        assert_eq!(host_ev.start, origin);
        assert_eq!(gemm_ev.start, origin);
        assert_eq!(host_ev.stream, Some(StreamId::Host));
        assert_eq!(gemm_ev.stream, Some(StreamId::Compute));
        assert_eq!(end, host_end.max(compute_end));
        assert!(end < origin + host_ev.duration() + gemm_ev.duration());
        assert_eq!(ex.now(), end);
    }

    #[test]
    fn wait_event_orders_across_lanes() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        ex.fork_streams();
        let uploaded = ex.on_stream(StreamId::Copy, |ex| {
            ex.transfer(TransferDir::H2D, 1 << 24);
            ex.record_event(StreamId::Copy)
        });
        ex.wait_event(StreamId::Compute, uploaded);
        ex.on_stream(StreamId::Compute, |ex| {
            ex.launch(KernelDesc::gemm("dep", 64, 64, 64));
        });
        ex.join_streams();
        let events = ex.timeline().events();
        let copy = events.iter().find(|e| e.label == "memcpy_h2d").unwrap();
        let kernel = events.iter().find(|e| e.label == "dep").unwrap();
        assert!(
            kernel.start >= copy.end,
            "dependent kernel {kernel:?} must start after its upload {copy:?}"
        );
    }

    #[test]
    #[should_panic(expected = "different stream fork")]
    fn waiting_on_a_stale_forks_event_panics() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        ex.fork_streams();
        let stale = ex.record_event(StreamId::Copy);
        ex.join_streams();
        // A new fork must not honor handles from the previous one.
        ex.fork_streams();
        ex.wait_event(StreamId::Compute, stale);
    }

    #[test]
    #[should_panic(expected = "different stream fork")]
    fn waiting_on_another_executors_event_panics() {
        let mut a = gpu_executor();
        a.fork_streams();
        let foreign = a.record_event(StreamId::Copy);
        let mut b = gpu_executor();
        b.fork_streams();
        b.wait_event(StreamId::Compute, foreign);
    }

    #[test]
    fn tracing_captures_sync_records_and_transfers() {
        use crate::trace::TraceRecord;
        let mut ex = gpu_executor();
        ex.ensure_context();
        ex.enable_tracing();
        assert!(ex.tracing_enabled());
        ex.fork_streams();
        let up = ex.on_stream(StreamId::Copy, |ex| {
            ex.transfer(TransferDir::H2D, 4096);
            ex.record_event(StreamId::Copy)
        });
        ex.wait_event(StreamId::Compute, up);
        ex.join_streams();
        let records = ex.trace().unwrap().records();
        assert!(matches!(records[0], TraceRecord::Fork { .. }));
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::Priced {
                dir: TransferDir::H2D,
                bytes: 4096,
                lane: Some(StreamId::Copy),
                ..
            }
        )));
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::EventRecord {
                event: 0,
                lane: StreamId::Copy,
                ..
            }
        )));
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::EventWait {
                event: 0,
                lane: StreamId::Compute,
            }
        )));
        assert!(matches!(records.last().unwrap(), TraceRecord::Join { .. }));
    }

    #[test]
    fn tracing_off_records_nothing() {
        let mut ex = gpu_executor();
        ex.launch(KernelDesc::gemm("k", 32, 32, 32));
        ex.transfer(TransferDir::H2D, 1024);
        assert!(!ex.tracing_enabled());
        assert!(ex.trace().is_none());
    }

    #[test]
    fn serial_actions_never_carry_a_stream_tag() {
        let mut ex = gpu_executor();
        ex.launch(KernelDesc::gemm("k", 32, 32, 32));
        ex.transfer(TransferDir::D2H, 4096);
        assert!(ex.timeline().events().iter().all(|e| e.stream.is_none()));
        assert!(!ex.streams_active());
    }

    #[test]
    fn join_without_lane_work_is_a_no_op_on_the_clock() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        let before = ex.now();
        ex.fork_streams();
        assert!(ex.streams_active());
        let end = ex.join_streams();
        assert_eq!(end, before);
        assert_eq!(ex.now(), before);
    }

    #[test]
    fn pinned_transfer_pricing_matches_the_historical_formula() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        assert_eq!(ex.transfer_mode(), TransferMode::Pinned);
        let bytes = 1u64 << 20;
        let d = ex.transfer(TransferDir::H2D, bytes);
        let p = PlatformSpec::default().pcie;
        let expected = DurationNs::from_nanos(p.latency_ns)
            + DurationNs::from_secs_f64(bytes as f64 / p.bandwidth);
        assert_eq!(d, expected);
    }

    #[test]
    fn pageable_transfers_pay_staging_and_metadata() {
        let price = |mode: TransferMode, bytes: u64| {
            let mut ex = gpu_executor();
            ex.set_transfer_mode(mode);
            ex.ensure_context();
            ex.transfer(TransferDir::H2D, bytes)
        };
        let spec = PlatformSpec::default().pcie;
        // Any payload is strictly slower pageable than pinned…
        assert!(price(TransferMode::Pageable, 1 << 20) > price(TransferMode::Pinned, 1 << 20));
        // …and even a zero-byte transfer pays the host metadata term.
        assert_eq!(
            price(TransferMode::Pageable, 0).as_nanos(),
            spec.latency_ns + spec.host_meta_ns
        );
        assert_eq!(price(TransferMode::Pinned, 0).as_nanos(), spec.latency_ns);
    }

    #[test]
    fn feature_cache_balances_gpu_memory() {
        let mut ex = gpu_executor();
        ex.enable_feature_cache(2);
        assert!(!ex.cache_probe_insert(TensorClass::NodeFeature, 1, 100));
        assert!(!ex.cache_probe_insert(TensorClass::NodeFeature, 2, 200));
        assert_eq!(ex.gpu_memory().live_bytes(), 300);
        // A hit allocates nothing…
        assert!(ex.cache_probe_insert(TensorClass::NodeFeature, 1, 100));
        assert_eq!(ex.gpu_memory().live_bytes(), 300);
        // …and an evicting miss frees the victim's bytes.
        assert!(!ex.cache_probe_insert(TensorClass::NodeFeature, 3, 50));
        assert_eq!(ex.gpu_memory().live_bytes(), 150); // 100 + 50, id 2 gone
        let s = ex.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
    }

    #[test]
    fn enable_feature_cache_is_idempotent_and_keeps_warm_rows() {
        let mut ex = gpu_executor();
        assert!(ex.feature_cache().is_none());
        assert!(!ex.cache_probe_insert(TensorClass::NodeMemory, 9, 64));
        assert_eq!(ex.cache_stats(), CacheStats::default());
        ex.enable_feature_cache(4);
        ex.cache_probe_insert(TensorClass::NodeMemory, 9, 64);
        // Re-enabling at the same capacity keeps the warm row…
        ex.enable_feature_cache(4);
        assert!(ex.cache_probe_insert(TensorClass::NodeMemory, 9, 64));
        // …while a different capacity rebuilds it cold.
        ex.enable_feature_cache(8);
        assert!(!ex.cache_probe_insert(TensorClass::NodeMemory, 9, 64));
    }

    #[test]
    fn single_device_engine_is_device_zero() {
        let mut ex = gpu_executor();
        assert_eq!(ex.n_devices(), 1);
        assert_eq!(ex.current_device(), 0);
        ex.launch(KernelDesc::gemm("k", 16, 16, 16));
        ex.transfer(TransferDir::H2D, 1024);
        assert!(ex.timeline().events().iter().all(|e| e.device == 0));
    }

    #[test]
    fn multi_device_fork_overlaps_compute_across_devices() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.ensure_context();
        let origin = ex.now();
        ex.fork_streams_multi(2);
        let desc = KernelDesc::gemm("shard", 512, 512, 512);
        ex.on_stream(StreamId::Compute, |ex| {
            ex.launch(desc.clone());
        });
        ex.on_device(1, |ex| {
            ex.on_stream(StreamId::Compute, |ex| {
                ex.launch(desc.clone());
            });
        });
        let end = ex.join_streams();
        let events: Vec<_> = ex
            .timeline()
            .events()
            .iter()
            .filter(|e| e.label == "shard")
            .collect();
        assert_eq!(events.len(), 2);
        // Same lane, different devices: both start at the fork origin —
        // the devices genuinely run concurrently.
        assert_eq!(events[0].device, 0);
        assert_eq!(events[1].device, 1);
        assert_eq!(events[0].start, origin);
        assert_eq!(events[1].start, origin);
        assert_eq!(end, events[0].end.max(events[1].end));
    }

    #[test]
    fn cross_device_events_order_work() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.ensure_context();
        ex.fork_streams_multi(2);
        let up = ex.on_device(1, |ex| {
            ex.on_stream(StreamId::Copy, |ex| {
                ex.transfer(TransferDir::H2D, 1 << 24);
                ex.record_event(StreamId::Copy)
            })
        });
        // Device 0's compute waits on device 1's upload.
        ex.wait_event(StreamId::Compute, up);
        ex.on_stream(StreamId::Compute, |ex| {
            ex.launch(KernelDesc::gemm("dep", 64, 64, 64));
        });
        ex.join_streams();
        let events = ex.timeline().events();
        let copy = events.iter().find(|e| e.label == "memcpy_h2d").unwrap();
        let kernel = events.iter().find(|e| e.label == "dep").unwrap();
        assert_eq!(copy.device, 1);
        assert_eq!(kernel.device, 0);
        assert!(kernel.start >= copy.end);
    }

    #[test]
    #[should_panic(expected = "outside the active fork")]
    fn switching_past_the_fork_span_panics() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(4), ExecMode::Gpu);
        ex.fork_streams_multi(2);
        ex.on_device(3, |_| {});
    }

    #[test]
    #[should_panic(expected = "outside the platform")]
    fn switching_past_the_platform_panics() {
        let mut ex = gpu_executor();
        ex.on_device(1, |_| {});
    }

    #[test]
    fn peer_transfer_prices_the_topology_edge() {
        let bytes = 1u64 << 24;
        // NVLink: one hop on the link.
        let mut nv = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        nv.ensure_context();
        let d_nv = nv.on_device(1, |ex| ex.peer_transfer(0, bytes));
        let link = crate::spec::LinkSpec::nvlink();
        assert_eq!(
            d_nv,
            DurationNs::from_nanos(link.latency_ns)
                + DurationNs::from_secs_f64(bytes as f64 / link.bandwidth)
        );
        let e = nv.timeline().events().last().unwrap();
        assert_eq!(e.category, EventCategory::PeerTransfer);
        assert_eq!((e.label, e.device, e.bytes), ("peer_copy", 1, bytes));

        // No peer edge: the payload bounces D2H + H2D through the host.
        let mut pc = Executor::new(PlatformSpec::multi_gpu_pcie(2), ExecMode::Gpu);
        pc.ensure_context();
        let d_pc = pc.on_device(1, |ex| ex.peer_transfer(0, bytes));
        let p = PlatformSpec::default().pcie;
        assert_eq!(
            d_pc,
            DurationNs::from_nanos(2 * p.latency_ns)
                + DurationNs::from_secs_f64(2.0 * bytes as f64 / p.bandwidth)
        );
        assert!(d_pc > d_nv, "host-staged bounce must cost more than NVLink");
        assert_eq!(
            pc.timeline().events().last().unwrap().label,
            "peer_copy_staged"
        );
        assert_eq!(nv.timeline().peer_bytes(), bytes);
    }

    #[test]
    fn peer_transfer_degenerate_cases_are_free() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.ensure_context();
        let before = ex.timeline().len();
        // Same device and zero bytes cost nothing and record nothing.
        assert_eq!(ex.peer_transfer(0, 1024), DurationNs::ZERO);
        assert_eq!(
            ex.on_device(1, |ex| ex.peer_transfer(1, 0)),
            DurationNs::ZERO
        );
        assert_eq!(ex.timeline().len(), before);
        // CPU-only mode has no devices to peer between.
        let mut cpu = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        assert_eq!(cpu.peer_transfer(0, 1024), DurationNs::ZERO);
    }

    #[test]
    fn feature_caches_are_shard_local_per_device() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.enable_feature_cache(8);
        // A row cached on device 0 misses on device 1: each shard owns
        // its residency.
        assert!(!ex.cache_probe_insert(TensorClass::NodeFeature, 7, 64));
        assert!(ex.cache_probe_insert(TensorClass::NodeFeature, 7, 64));
        ex.on_device(1, |ex| {
            assert!(!ex.cache_probe_insert(TensorClass::NodeFeature, 7, 64));
        });
        let s = ex.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        let per = ex.cache_class_stats();
        assert_eq!(per[TensorClass::NodeFeature.index()].misses, 2);
        assert_eq!(per[TensorClass::EdgeFeature.index()].lookups(), 0);
        assert!(ex.device_feature_cache(0).is_some());
        assert!(ex.device_feature_cache(1).is_some());
    }

    #[test]
    fn device_switches_are_traced() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.ensure_context();
        ex.enable_tracing();
        ex.on_device(1, |ex| {
            ex.peer_transfer(0, 4096);
        });
        let records = ex.trace().unwrap().records();
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::DeviceSwitch { device: 1 })));
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::DeviceSwitch { device: 0 })));
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::PeerPriced {
                src: 0,
                dst: 1,
                bytes: 4096,
                via_host: false,
                ..
            }
        )));
    }

    #[test]
    fn scopes_span_lane_work_inside_a_fork() {
        let mut ex = gpu_executor();
        ex.ensure_context();
        ex.fork_streams();
        ex.on_stream(StreamId::Host, |ex| {
            ex.scope("sampling", |ex| {
                ex.host(HostWork::sequential("sample", 10_000, 4096));
            });
        });
        ex.join_streams();
        let s = ex.scopes().iter().find(|s| s.path == "sampling").unwrap();
        assert!(s.duration().as_nanos() > 0);
        let e = ex
            .timeline()
            .events()
            .iter()
            .find(|e| e.label == "sample")
            .unwrap();
        assert!(s.start <= e.start && e.end <= s.end);
    }
}
