//! # dgnn-suite
//!
//! Facade crate for the Rust reproduction of *"Bottleneck Analysis of
//! Dynamic Graph Neural Network Inference on CPU and GPU"* (IISWC 2022).
//!
//! Re-exports every layer of the stack under stable module names:
//!
//! * [`tensor`] — dense f32 math
//! * [`device`] — the simulated CPU/GPU platform (virtual clock, cost
//!   models, PCIe, warm-up, kernel timeline)
//! * [`profile`] — the paper's contribution: profiler, breakdowns, GPU
//!   utilization, bottleneck classification
//! * [`nn`] — neural-network modules
//! * [`graph`] — dynamic-graph substrate (events, snapshots, sampling)
//! * [`datasets`] — synthetic dataset generators
//! * [`models`] — the eight profiled DGNNs and optimization ablations
//! * [`serve`] — deterministic simulated inference serving (arrivals,
//!   micro-batching, warm replica pool, tail-latency reports)
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use dgnn_datasets as datasets;
pub use dgnn_device as device;
pub use dgnn_graph as graph;
pub use dgnn_models as models;
pub use dgnn_nn as nn;
pub use dgnn_profile as profile;
pub use dgnn_serve as serve;
pub use dgnn_tensor as tensor;
