//! Property tests over the simulated platform's invariants.

use dgnn_device::{
    DurationNs, ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, TransferDir,
};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..256, 1usize..256, 1usize..256)
}

proptest! {
    #[test]
    fn kernel_time_is_positive_and_monotone_in_work((m, k, n) in dims()) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let small = ex.launch(KernelDesc::gemm("s", m, k, n));
        let large = ex.launch(KernelDesc::gemm("l", m * 2, k * 2, n * 2));
        prop_assert!(small > DurationNs::ZERO);
        prop_assert!(large >= small);
    }

    #[test]
    fn clock_equals_span_end_for_sequential_execution(
        works in prop::collection::vec((1usize..64, 1usize..64, 1usize..64), 1..20)
    ) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        for (m, k, n) in works {
            ex.launch(KernelDesc::gemm("k", m, k, n));
        }
        prop_assert_eq!(ex.now(), ex.timeline().span_end());
    }

    #[test]
    fn transfers_scale_with_bytes(b1 in 1u64..1_000_000, b2 in 1u64..1_000_000) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let d1 = ex.transfer(TransferDir::H2D, b1.min(b2));
        let d2 = ex.transfer(TransferDir::D2H, b1.max(b2));
        prop_assert!(d2 >= d1);
    }

    #[test]
    fn same_seed_same_schedule((m, k, n) in dims()) {
        let run = || {
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            ex.scope("run", |ex| {
                ex.host(HostWork::irregular("sample", 1000, 8192));
                ex.transfer(TransferDir::H2D, (m * k * 4) as u64);
                ex.launch(KernelDesc::gemm("mm", m, k, n));
                ex.transfer(TransferDir::D2H, (m * n * 4) as u64);
            });
            ex.now()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn utilization_is_a_fraction(ops in prop::collection::vec(dims(), 1..15)) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        for (m, k, n) in ops {
            ex.launch(KernelDesc::gemm("k", m, k, n));
        }
        let u = ex.timeline().gpu_utilization(DurationNs::ZERO, ex.now());
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn scope_intervals_contain_their_events(
        ops in prop::collection::vec(dims(), 1..10)
    ) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        ex.scope("outer", |ex| {
            for (m, k, n) in &ops {
                ex.scope("inner", |ex| {
                    ex.launch(KernelDesc::gemm("k", *m, *k, *n));
                });
            }
        });
        let outer = ex
            .scopes()
            .iter()
            .find(|s| s.path == "outer")
            .expect("outer scope recorded")
            .clone();
        for e in ex.timeline().events_in_scope("outer") {
            prop_assert!(e.start >= outer.start && e.end <= outer.end);
        }
    }

    #[test]
    fn cpu_only_mode_never_touches_gpu(ops in prop::collection::vec(dims(), 1..10)) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        for (m, k, n) in ops {
            ex.launch(KernelDesc::gemm("k", m, k, n));
            ex.transfer(TransferDir::H2D, 4096);
        }
        prop_assert_eq!(ex.timeline().busy_time(dgnn_device::Place::Gpu), DurationNs::ZERO);
        prop_assert_eq!(ex.gpu_memory().peak_bytes(), 0);
    }
}
