//! Schedule re-simulation for the paper's §5 optimization proposals.
//!
//! Rather than complicating the sequential executor with streams, the
//! proposed optimizations are evaluated by *re-scheduling recorded stage
//! durations*: take the per-timestep durations a real (sequential) run
//! measured, and compute the makespan a pipelined schedule would achieve.
//! This mirrors how Figure 10 argues the optimization — RNN of step
//! `t+1` overlaps GNN of step `t`.

use dgnn_device::DurationNs;

/// Per-timestep durations of a two-stage computation
/// (e.g. EvolveGCN's RNN stage and GNN stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePair {
    /// First stage (producer — e.g. RNN weight update).
    pub first: DurationNs,
    /// Second stage (consumer — e.g. GNN using the updated weights).
    pub second: DurationNs,
}

/// Sequential makespan: `Σ (first + second)`.
pub fn sequential_makespan(steps: &[StagePair]) -> DurationNs {
    steps.iter().map(|s| s.first + s.second).sum()
}

/// Two-stage pipelined makespan (Fig 10): stage one of step `t+1` runs
/// concurrently with stage two of step `t`; within a step, stage two
/// still waits for stage one.
pub fn pipelined_makespan(steps: &[StagePair]) -> DurationNs {
    let mut first_done = DurationNs::ZERO;
    let mut second_done = DurationNs::ZERO;
    for s in steps {
        first_done += s.first;
        second_done = first_done.max(second_done) + s.second;
    }
    second_done
}

/// Speedup of pipelining over sequential execution (≥ 1).
pub fn pipeline_speedup(steps: &[StagePair]) -> f64 {
    let seq = sequential_makespan(steps).as_nanos();
    let pipe = pipelined_makespan(steps).as_nanos();
    if pipe == 0 {
        return 1.0;
    }
    seq as f64 / pipe as f64
}

/// Overlap of host preprocessing with device compute (§5.1.1, the
/// Zhang et al. style sampling/inference overlap): host work for batch
/// `t+1` proceeds while the device processes batch `t`. `pairs` holds
/// `(host, device)` durations per batch.
pub fn overlapped_makespan(pairs: &[(DurationNs, DurationNs)]) -> DurationNs {
    let mut host_done = DurationNs::ZERO;
    let mut device_done = DurationNs::ZERO;
    for &(host, device) in pairs {
        host_done += host;
        device_done = host_done.max(device_done) + device;
    }
    device_done
}

/// Bytes saved by delta-snapshot transfer (§5.2.2): transferring only the
/// changed portion of each snapshot. `sizes` are per-snapshot byte
/// counts; `similarity` in `[0, 1]` is the fraction shared with the
/// previous snapshot (the first snapshot always ships whole).
pub fn delta_transfer_bytes(sizes: &[u64], similarity: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&similarity),
        "similarity must be in [0, 1]"
    );
    let mut total = 0u64;
    for (i, &s) in sizes.iter().enumerate() {
        if i == 0 {
            total += s;
        } else {
            #[expect(
                clippy::cast_possible_truncation,
                reason = "rounded byte fraction fits u64"
            )]
            {
                total += (s as f64 * (1.0 - similarity)).round() as u64;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> DurationNs {
        DurationNs::from_nanos(v)
    }

    #[test]
    fn balanced_stages_approach_2x_speedup() {
        let steps: Vec<StagePair> = (0..100)
            .map(|_| StagePair {
                first: ns(10),
                second: ns(10),
            })
            .collect();
        let s = pipeline_speedup(&steps);
        assert!(s > 1.9, "speedup {s}");
        assert!(s <= 2.0 + 1e-9);
    }

    #[test]
    fn pipelining_never_hurts() {
        let steps = vec![
            StagePair {
                first: ns(5),
                second: ns(20),
            },
            StagePair {
                first: ns(30),
                second: ns(2),
            },
            StagePair {
                first: ns(1),
                second: ns(1),
            },
        ];
        assert!(pipelined_makespan(&steps) <= sequential_makespan(&steps));
        assert!(pipeline_speedup(&steps) >= 1.0);
    }

    #[test]
    fn pipelined_respects_intra_step_dependency() {
        // One step: no overlap possible; makespan equals sequential.
        let steps = vec![StagePair {
            first: ns(7),
            second: ns(9),
        }];
        assert_eq!(pipelined_makespan(&steps), ns(16));
    }

    #[test]
    fn skewed_stages_bound_by_bottleneck_stage() {
        let steps: Vec<StagePair> = (0..50)
            .map(|_| StagePair {
                first: ns(100),
                second: ns(1),
            })
            .collect();
        // Makespan is dominated by the slow first stage.
        let m = pipelined_makespan(&steps).as_nanos();
        assert!(m >= 50 * 100);
        assert!(m <= 50 * 100 + 101);
    }

    #[test]
    fn overlap_hides_cheap_host_work() {
        let pairs: Vec<(DurationNs, DurationNs)> = (0..20).map(|_| (ns(2), ns(10))).collect();
        let overlapped = overlapped_makespan(&pairs);
        // Only the first host stage is exposed.
        assert_eq!(overlapped.as_nanos(), 2 + 20 * 10);
    }

    #[test]
    fn overlap_degrades_to_host_bound_when_sampling_dominates() {
        let pairs: Vec<(DurationNs, DurationNs)> = (0..20).map(|_| (ns(50), ns(5))).collect();
        let overlapped = overlapped_makespan(&pairs).as_nanos();
        assert!(overlapped >= 20 * 50, "host chain lower-bounds makespan");
    }

    #[test]
    fn delta_transfer_saves_bytes() {
        let sizes = vec![1_000u64; 10];
        let full: u64 = sizes.iter().sum();
        let delta = delta_transfer_bytes(&sizes, 0.8);
        assert_eq!(delta, 1_000 + 9 * 200);
        assert!(delta < full);
        assert_eq!(delta_transfer_bytes(&sizes, 0.0), full);
    }

    #[test]
    #[should_panic(expected = "similarity")]
    fn delta_transfer_validates_similarity() {
        delta_transfer_bytes(&[1], 1.5);
    }
}
