//! # dgnn-nn
//!
//! Neural-network modules over the simulated platform.
//!
//! Every layer does two things per forward pass: it computes the real
//! numeric result with `dgnn-tensor`, and it *launches* matching kernel
//! descriptors on the [`dgnn_device::Executor`] so the simulated clock
//! advances the way the equivalent cuBLAS/cuDNN calls would. The layers
//! are exactly the building blocks the eight profiled DGNNs share:
//! linear/MLP transforms, GRU/LSTM/vanilla-RNN cells, multi-head
//! attention, GCN propagation, Bochner/Time2Vec time encoding, layer
//! norm and embedding tables.
//!
//! All parameters are registered ([`Module::parameters`]) so models can
//! report their weight bytes and tensor counts to
//! [`dgnn_device::Executor::model_init`] — the quantities that drive the
//! paper's warm-up accounting.

#![forbid(unsafe_code)]

mod attention;
mod embedding;
mod gcn;
mod layernorm;
mod linear;
mod module;
mod rnn;
mod time_encoding;

pub use attention::MultiHeadAttention;
pub use embedding::EmbeddingTable;
pub use gcn::GcnLayer;
pub use layernorm::LayerNorm;
pub use linear::{Linear, Mlp};
pub use module::{Module, Param};
pub use rnn::{GruCell, LstmCell, LstmState, RnnCell};
pub use time_encoding::{BochnerTimeEncoder, Time2Vec};

/// Result alias: layers surface tensor shape errors.
pub type Result<T> = dgnn_tensor::Result<T>;
