//! Cross-validation of the serving path against the single-run harness:
//! with micro-batching disabled (window 0) and a single warm replica,
//! serving N single-model requests must reproduce — bit for bit — the
//! numerics of N independent `measure_sanitized` runs.
//!
//! This pins down the core amortization claim: the warm pool changes
//! *when* warm-up is priced, never *what* the model computes.

use dgnn_bench::{build_model, default_config, measure_sanitized, served_zoo};
use dgnn_datasets::Scale;
use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_serve::{serve, ServeConfig};

#[test]
fn window_zero_pool_one_matches_sequential_runs() {
    const N: usize = 5;
    const SEED: u64 = 3;

    let cfg = ServeConfig {
        seed: 17,
        n_requests: N,
        arrival_rate_rps: 40.0,
        batch_window: DurationNs::ZERO, // every request its own batch
        max_batch: 1,
        pool_size: 1,
        queue_bound: 64,
        mode: ExecMode::Gpu,
        trace: true,
        spec: PlatformSpec::default(),
    };
    let outcome = serve(&cfg, &served_zoo(&["jodie"], Scale::Tiny, SEED));
    assert_eq!(outcome.report.served, N, "nothing may shed at this rate");
    assert_eq!(outcome.report.batches, N, "window 0 must not batch");
    assert_eq!(
        outcome.report.cold_services, 0,
        "single-model mix is all-warm"
    );

    // The serving timeline itself must be hazard-free.
    let audit = dgnn_analysis::audit(&outcome.sessions[0]);
    assert!(audit.is_clean(), "served session has hazards: {audit:?}");

    let run_cfg = default_config("jodie").with_max_units(1);
    for (i, batch) in outcome.batches.iter().enumerate() {
        let mut model = build_model("jodie", Scale::Tiny, SEED);
        let (report, run) = measure_sanitized(model.as_mut(), ExecMode::Gpu, &run_cfg);
        assert!(report.is_clean(), "sequential run {i} has hazards");
        assert_eq!(
            batch.summary.checksum.to_bits(),
            run.summary.checksum.to_bits(),
            "request {i}: served checksum must equal the sequential run's"
        );
        assert_eq!(
            batch.summary.inference_time, run.summary.inference_time,
            "request {i}: priced inference time must be identical"
        );
        assert_eq!(batch.summary.iterations, run.summary.iterations);
    }
}
