//! Timeline invariants of the serial simulator: events never overlap,
//! they advance monotonically on the single clock, and the top-level
//! profiler scopes (warm-up + inference) tile a full model run exactly —
//! their summed durations equal `Executor::now()`. Every bottleneck
//! share in the paper-claims suite divides by these totals, so the
//! accounting must close to the nanosecond.

use dgnn_suite::datasets::{iso17, wikipedia, Scale};
use dgnn_suite::device::{ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{
    DgnnModel, InferenceConfig, MolDgnn, MolDgnnConfig, Tgat, TgatConfig, Tgn, TgnConfig,
};

const SEED: u64 = 13;

fn zoo() -> Vec<(Box<dyn DgnnModel>, InferenceConfig)> {
    let base = InferenceConfig::default().with_max_units(2);
    vec![
        (
            Box::new(Tgat::new(
                wikipedia(Scale::Tiny, SEED),
                TgatConfig::default(),
                SEED,
            )) as _,
            base.clone().with_batch_size(100).with_neighbors(10),
        ),
        (
            Box::new(Tgn::new(
                wikipedia(Scale::Tiny, SEED),
                TgnConfig::default(),
                SEED,
            )) as _,
            base.clone().with_batch_size(128).with_neighbors(10),
        ),
        (
            Box::new(MolDgnn::new(
                iso17(Scale::Tiny, SEED),
                MolDgnnConfig::default(),
                SEED,
            )) as _,
            base.with_batch_size(32),
        ),
    ]
}

#[test]
fn events_are_monotone_and_non_overlapping() {
    for mode in [ExecMode::Gpu, ExecMode::CpuOnly] {
        for (mut model, cfg) in zoo() {
            let mut ex = Executor::new(PlatformSpec::default(), mode);
            model.run(&mut ex, &cfg).unwrap();
            let events = ex.timeline().events();
            assert!(!events.is_empty(), "{} produced no events", model.name());
            let mut cursor = 0u64;
            for e in events {
                assert!(
                    e.start.as_nanos() >= cursor,
                    "{} [{mode:?}]: event '{}' starts at {} before the previous \
                     event ended at {cursor}",
                    model.name(),
                    e.label,
                    e.start.as_nanos(),
                );
                assert!(
                    e.end >= e.start,
                    "{} [{mode:?}]: event '{}' ends before it starts",
                    model.name(),
                    e.label,
                );
                cursor = e.end.as_nanos();
            }
            assert!(
                cursor <= ex.now().as_nanos(),
                "{} [{mode:?}]: last event outlives the clock",
                model.name(),
            );
        }
    }
}

/// With `pipeline_overlap` off (the default), the decorated drivers must
/// behave exactly like the seed's serial engine: no event carries a
/// stream tag, and the timeline replays byte-for-byte — same labels,
/// same nanosecond endpoints, same priced work. Overlap on is the only
/// thing allowed to change the timeline.
#[test]
fn overlap_off_timelines_are_untagged_and_bit_stable() {
    for (i, (_, cfg)) in zoo().iter().enumerate() {
        assert!(
            !cfg.pipeline_overlap,
            "config {i}: pipeline_overlap must default off"
        );
    }
    for mode in [ExecMode::Gpu, ExecMode::CpuOnly] {
        for ((mut model, cfg), (mut replay, _)) in zoo().into_iter().zip(zoo()) {
            let mut ex = Executor::new(PlatformSpec::default(), mode);
            model.run(&mut ex, &cfg).unwrap();
            let mut ex2 = Executor::new(PlatformSpec::default(), mode);
            replay.run(&mut ex2, &cfg).unwrap();

            let (a, b) = (ex.timeline().events(), ex2.timeline().events());
            assert_eq!(a.len(), b.len(), "{}: event count drifted", model.name());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(
                    x.stream,
                    None,
                    "{} [{mode:?}]: serial event '{}' carries a stream tag",
                    model.name(),
                    x.label,
                );
                assert_eq!(
                    (x.label, x.start, x.end, x.flops, x.bytes),
                    (y.label, y.start, y.end, y.flops, y.bytes),
                    "{} [{mode:?}]: timeline is not bit-stable",
                    model.name(),
                );
            }
            assert_eq!(ex.now(), ex2.now());
        }
    }
}

#[test]
fn top_level_scopes_tile_the_run_exactly() {
    for mode in [ExecMode::Gpu, ExecMode::CpuOnly] {
        for (mut model, cfg) in zoo() {
            let mut ex = Executor::new(PlatformSpec::default(), mode);
            model.run(&mut ex, &cfg).unwrap();
            let top: Vec<_> = ex.scopes().iter().filter(|s| s.depth == 0).collect();
            // A full run is warm-up followed by inference; both are
            // top-level scopes on the same clock.
            assert!(
                top.iter().any(|s| s.path == "warmup"),
                "{}: missing warmup scope",
                model.name(),
            );
            assert!(
                top.iter().any(|s| s.path == "inference"),
                "{}: missing inference scope",
                model.name(),
            );
            // Scopes are contiguous: each starts where the previous ended.
            let mut cursor = 0u64;
            for s in &top {
                assert_eq!(
                    s.start.as_nanos(),
                    cursor,
                    "{} [{mode:?}]: top-level scope '{}' does not start where \
                     the previous one ended",
                    model.name(),
                    s.path,
                );
                cursor = s.end.as_nanos();
            }
            // And their durations sum to the executor clock.
            let total: u64 = top.iter().map(|s| s.duration().as_nanos()).sum();
            assert_eq!(
                total,
                ex.now().as_nanos(),
                "{} [{mode:?}]: top-level scopes do not tile the timeline",
                model.name(),
            );
        }
    }
}
