//! Workspace model: walks every Rust source file of the workspace,
//! lexes it, and classifies it (owning crate, production vs test
//! context) so the rule scanners can decide what applies where.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::{lex, Lexed};

/// One lexed, classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Owning crate: the directory name under `crates/` (e.g. `serve`),
    /// or `suite` for the facade crate's root `src/`, `tests/` and
    /// `examples/`.
    pub crate_name: String,
    /// Whether the whole file is test/bench/example context (under a
    /// `tests/`, `benches/` or `examples/` directory). `#[cfg(test)]`
    /// modules inside production files are tracked per-line in
    /// [`Lexed::test_regions`].
    pub in_tests_dir: bool,
    /// Raw file contents (LINT4 reads string literals from these).
    pub raw: String,
    /// Lexed view (cleaned code, allows, test regions, fn map).
    pub lex: Lexed,
}

impl SourceFile {
    /// Whether a 1-based line is test context (file-level or module).
    pub fn is_test_context(&self, line: usize) -> bool {
        self.in_tests_dir || self.lex.is_test_line(line)
    }

    /// Builds a file from in-memory contents (fixtures and tests).
    pub fn from_source(rel_path: &str, raw: String) -> SourceFile {
        let lexed = lex(&raw);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_of(rel_path),
            in_tests_dir: tests_dir(rel_path),
            raw,
            lex: lexed,
        }
    }
}

/// The loaded workspace: every source file, in sorted path order (so
/// reports are deterministic regardless of directory-entry order).
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All source files, sorted by `rel_path`.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every `.rs` file under `crates/*/{src,tests,benches}`,
    /// plus the facade crate's `src/`, `tests/` and `examples/`.
    /// Directories named `target` or `fixtures` are skipped (fixtures
    /// are seeded-bad lint inputs, not workspace code).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths: Vec<PathBuf> = Vec::new();
        for top in ["crates", "src", "tests", "examples"] {
            let dir = root.join(top);
            if dir.is_dir() {
                collect_rs(&dir, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let raw = fs::read_to_string(&p)?;
            files.push(SourceFile::from_source(&rel, raw));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The file at a workspace-relative path, if loaded.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// Recursively collects `.rs` files, skipping `target` and `fixtures`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate name from a workspace-relative path.
fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        _ => "suite".to_string(),
    }
}

/// Whether the path sits under a tests/benches/examples directory.
fn tests_dir(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_derives_crate_and_test_context() {
        let f = SourceFile::from_source("crates/serve/src/sim.rs", "fn a() {}".into());
        assert_eq!(f.crate_name, "serve");
        assert!(!f.in_tests_dir);
        let t = SourceFile::from_source("crates/dyngraph/tests/properties.rs", String::new());
        assert_eq!(t.crate_name, "dyngraph");
        assert!(t.in_tests_dir);
        let e = SourceFile::from_source("examples/quickstart.rs", String::new());
        assert_eq!(e.crate_name, "suite");
        assert!(e.in_tests_dir);
    }

    #[test]
    fn cfg_test_modules_are_test_context_inside_prod_files() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let f = SourceFile::from_source("crates/serve/src/sim.rs", src.into());
        assert!(!f.is_test_context(1));
        assert!(f.is_test_context(4));
    }

    #[test]
    fn loads_the_live_workspace_sorted() {
        // CARGO_MANIFEST_DIR/../.. is the workspace root in-tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let ws = Workspace::load(root).expect("load workspace");
        assert!(ws.files.len() > 50, "workspace has many sources");
        assert!(ws.file("crates/device/src/timeline.rs").is_some());
        assert!(
            ws.files.windows(2).all(|w| w[0].rel_path < w[1].rel_path),
            "files sorted for deterministic reports"
        );
        assert!(
            ws.files.iter().all(|f| !f.rel_path.contains("fixtures")),
            "fixtures are not workspace code"
        );
    }
}
