//! Hardware specifications for the simulated platform.
//!
//! Defaults approximate the paper's testbed: an Intel Xeon Gold 6226R
//! (16 cores, 2.9 GHz) and an NVIDIA RTX A6000 (84 SMs, ~38.7 TFLOP/s fp32,
//! 768 GB/s GDDR6) connected over PCIe 4.0 x16. The numbers are first-order
//! datasheet values; the reproduction targets *shapes* (ratios, crossovers,
//! proportions), not the authors' absolute milliseconds.

/// Simulated CPU specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Number of physical cores.
    pub cores: u32,
    /// Aggregate peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustained sequential memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fraction of `mem_bw` achieved under irregular (pointer-chasing /
    /// gather) access patterns — the penalty behind the paper's sampling
    /// bottleneck.
    pub irregular_efficiency: f64,
    /// Framework dispatch overhead charged per operator, in nanoseconds
    /// (the Python/op-dispatch cost PyTorch pays per op on CPU).
    pub dispatch_overhead_ns: u64,
    /// Data-parallel width at which the CPU saturates (elements of
    /// parallel work needed to engage all cores and SIMD lanes).
    pub saturation_width: u64,
    /// Fraction of peak FLOP/s a typical framework kernel achieves even
    /// at full occupancy (instruction mix, blocking, launch tails).
    pub kernel_efficiency: f64,
    /// Per-parameter-tensor allocation/copy overhead during CPU model
    /// initialization, in nanoseconds (framework tensor construction).
    pub model_init_per_tensor_ns: u64,
    /// Throughput of framework-level host preprocessing loops
    /// (temporal sampling, t-batching, snapshot assembly) in
    /// operations/s. Deliberately far below `peak_flops`: these loops run
    /// as interpreted / scalar framework code, which is exactly why the
    /// paper finds sampling on the CPU dominating inference.
    pub host_ops_per_sec: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec {
            cores: 16,
            peak_flops: 1.3e12,
            mem_bw: 120e9,
            irregular_efficiency: 0.08,
            dispatch_overhead_ns: 1_500,
            saturation_width: 16 * 256,
            kernel_efficiency: 0.5,
            model_init_per_tensor_ns: 50_000,
            host_ops_per_sec: 2.0e8,
        }
    }
}

/// Simulated GPU specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Aggregate peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Device memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fraction of `mem_bw` achieved under irregular access.
    pub irregular_efficiency: f64,
    /// Kernel launch overhead (driver + queueing) in nanoseconds.
    pub launch_overhead_ns: u64,
    /// Data-parallel width (lanes) at which the GPU saturates.
    pub saturation_width: u64,
    /// Fraction of peak FLOP/s a typical framework kernel achieves even
    /// at full occupancy.
    pub kernel_efficiency: f64,
    /// One-time CUDA context (lazy) initialization cost in nanoseconds.
    pub context_init_ns: u64,
    /// Fixed model-initialization cost (stream capture, cuDNN plan
    /// selection) in nanoseconds.
    pub model_init_base_ns: u64,
    /// Per-parameter-tensor allocation/registration cost during model
    /// initialization, in nanoseconds.
    pub model_init_per_tensor_ns: u64,
    /// Per-run activation allocation base cost in nanoseconds (the
    /// constant part of Table 2's per-batch warm-up).
    pub alloc_base_ns: u64,
    /// Additional allocation cost per byte of peak activation memory, in
    /// nanoseconds per byte (the growing part of Table 2's warm-up).
    pub alloc_per_byte_ns: f64,
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec {
            sm_count: 84,
            peak_flops: 38.7e12,
            mem_bw: 768e9,
            irregular_efficiency: 0.12,
            launch_overhead_ns: 6_000,
            saturation_width: 84 * 1_024,
            kernel_efficiency: 0.2,
            context_init_ns: 6_000_000_000,
            model_init_base_ns: 500_000_000,
            model_init_per_tensor_ns: 400_000,
            alloc_base_ns: 5_000_000,
            alloc_per_byte_ns: 0.3,
        }
    }
}

/// PCIe link between the simulated CPU and GPU.
///
/// The link is modeled in two regimes, selected per executor with
/// [`TransferMode`]:
///
/// * **Pinned** (page-locked host memory): DMA streams directly from
///   the host buffer at `bandwidth` after `latency_ns` of setup — the
///   historical (and default) pricing.
/// * **Pageable**: the driver must first copy the payload into an
///   internal pinned staging buffer (`staging_bandwidth`, a host
///   memcpy), then DMA it at the degraded `pageable_bandwidth`, and
///   every transfer additionally pays `host_meta_ns` of host-side
///   metadata bookkeeping (page pinning, address translation, command
///   submission) per "Understanding and Reducing Metadata-Driven Host
///   Overheads" — the term that dominates small-transfer workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieSpec {
    /// Effective bandwidth from pinned (page-locked) host memory, in
    /// bytes/s.
    pub bandwidth: f64,
    /// Fixed per-transfer latency (driver + DMA setup) in nanoseconds.
    pub latency_ns: u64,
    /// Effective DMA bandwidth from pageable host memory, in bytes/s
    /// (roughly half of pinned on the paper's testbed class).
    pub pageable_bandwidth: f64,
    /// Host-memcpy bandwidth into the driver's pinned staging buffer,
    /// in bytes/s (bounded by host memory bandwidth, paid only in
    /// pageable mode).
    pub staging_bandwidth: f64,
    /// Per-transfer host metadata overhead (page pinning, address
    /// translation, submission bookkeeping) in nanoseconds, paid only
    /// in pageable mode.
    pub host_meta_ns: u64,
}

impl Default for PcieSpec {
    fn default() -> Self {
        PcieSpec {
            bandwidth: 12e9,
            latency_ns: 12_000,
            pageable_bandwidth: 6.6e9,
            staging_bandwidth: 20e9,
            host_meta_ns: 5_000,
        }
    }
}

/// Which host-memory regime CPU↔GPU transfers are priced under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferMode {
    /// Page-locked host buffers: direct DMA at [`PcieSpec::bandwidth`].
    /// The default, bit-identical to the historical pricing.
    #[default]
    Pinned,
    /// Pageable host buffers: a staging-buffer copy, degraded DMA
    /// bandwidth, and per-transfer host metadata overhead.
    Pageable,
}

impl TransferMode {
    /// Stable lowercase name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TransferMode::Pinned => "pinned",
            TransferMode::Pageable => "pageable",
        }
    }
}

/// Index of a GPU in the platform's device graph. Device 0 is
/// [`PlatformSpec::gpu`]; devices 1..N are [`PlatformSpec::extra_gpus`].
pub type DeviceId = usize;

/// One directed interconnect edge between two GPUs (NVLink-class when
/// present; absence of an edge means transfers bounce through the host).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Effective peer-to-peer bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Fixed per-transfer latency (driver + route setup) in nanoseconds.
    pub latency_ns: u64,
}

impl LinkSpec {
    /// A third-generation NVLink bridge pair: ~112.5 GB/s effective per
    /// direction, with a far smaller setup latency than a PCIe DMA.
    pub fn nvlink() -> Self {
        LinkSpec {
            bandwidth: 112.5e9,
            latency_ns: 2_000,
        }
    }
}

/// How a cross-device transfer between two GPUs is routed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeerPath {
    /// A direct peer link (NVLink / P2P-enabled PCIe switch): one hop at
    /// the edge's bandwidth.
    Direct(LinkSpec),
    /// No peer edge: the payload bounces through host memory — a D2H
    /// then an H2D over each device's PCIe link.
    HostStaged,
}

/// Complete platform: CPU + GPU(s) + interconnect graph.
///
/// The historical single-GPU shape is the default: `extra_gpus` and
/// `peer_links` are empty, so `PlatformSpec::default()` — and every
/// serialized comparison against it — is unchanged. Each GPU owns an
/// identical host PCIe link (`pcie`), so host↔device traffic to
/// different devices proceeds in parallel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlatformSpec {
    /// The host CPU.
    pub cpu: CpuSpec,
    /// The accelerator (device 0).
    pub gpu: GpuSpec,
    /// The CPU↔GPU link (replicated per device).
    pub pcie: PcieSpec,
    /// Additional accelerators: device `d` (d ≥ 1) is `extra_gpus[d-1]`.
    /// Empty for the historical single-GPU platform.
    pub extra_gpus: Vec<GpuSpec>,
    /// Directed peer-link adjacency over GPUs: `peer_links[src][dst]` is
    /// the direct edge from device `src` to device `dst`, `None` when
    /// peer traffic must bounce through the host. May be empty (or
    /// ragged) — missing entries mean "no direct edge".
    pub peer_links: Vec<Vec<Option<LinkSpec>>>,
}

impl PlatformSpec {
    /// The paper's testbed (Xeon 6226R + A6000); same as `default()`,
    /// spelled explicitly for call sites that want to document intent.
    pub fn paper_testbed() -> Self {
        PlatformSpec::default()
    }

    /// An `n`-GPU box of testbed-class devices fully connected by NVLink
    /// (every ordered pair of distinct devices has a direct edge).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn multi_gpu_nvlink(n: usize) -> Self {
        assert!(n > 0, "a platform needs at least one GPU");
        let mut spec = PlatformSpec {
            extra_gpus: vec![GpuSpec::default(); n - 1],
            ..PlatformSpec::default()
        };
        spec.peer_links = (0..n)
            .map(|src| {
                (0..n)
                    .map(|dst| (src != dst).then(LinkSpec::nvlink))
                    .collect()
            })
            .collect();
        spec
    }

    /// An `n`-GPU box of testbed-class devices with no peer links: every
    /// cross-device transfer bounces through host memory over PCIe.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn multi_gpu_pcie(n: usize) -> Self {
        assert!(n > 0, "a platform needs at least one GPU");
        PlatformSpec {
            extra_gpus: vec![GpuSpec::default(); n - 1],
            ..PlatformSpec::default()
        }
    }

    /// Number of GPUs in the device graph (≥ 1).
    pub fn n_gpus(&self) -> usize {
        1 + self.extra_gpus.len()
    }

    /// The spec of GPU `device`.
    ///
    /// # Panics
    ///
    /// Panics when `device >= n_gpus()`.
    pub fn gpu_spec(&self, device: DeviceId) -> &GpuSpec {
        if device == 0 {
            &self.gpu
        } else {
            &self.extra_gpus[device - 1]
        }
    }

    /// How a transfer from `src` to `dst` is routed: the direct peer
    /// edge when the adjacency has one, a host-staged bounce otherwise.
    pub fn peer_path(&self, src: DeviceId, dst: DeviceId) -> PeerPath {
        match self
            .peer_links
            .get(src)
            .and_then(|row| row.get(dst))
            .copied()
            .flatten()
        {
            Some(link) => PeerPath::Direct(link),
            None => PeerPath::HostStaged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physically_plausible() {
        let p = PlatformSpec::default();
        assert!(p.gpu.peak_flops > p.cpu.peak_flops * 10.0);
        assert!(p.gpu.mem_bw > p.cpu.mem_bw);
        assert!(p.pcie.bandwidth < p.cpu.mem_bw);
        assert!(p.cpu.irregular_efficiency < 0.5);
        // Pageable DMA is slower than pinned; the staging memcpy is
        // faster than the link (it is a host-memory copy) but bounded
        // by host memory bandwidth.
        assert!(p.pcie.pageable_bandwidth < p.pcie.bandwidth);
        assert!(p.pcie.staging_bandwidth > p.pcie.bandwidth);
        assert!(p.pcie.staging_bandwidth < p.cpu.mem_bw);
        assert!(p.pcie.host_meta_ns < p.pcie.latency_ns);
    }

    #[test]
    fn transfer_mode_defaults_to_pinned() {
        assert_eq!(TransferMode::default(), TransferMode::Pinned);
        assert_eq!(TransferMode::Pinned.name(), "pinned");
        assert_eq!(TransferMode::Pageable.name(), "pageable");
    }

    #[test]
    fn paper_testbed_matches_default() {
        assert_eq!(PlatformSpec::paper_testbed(), PlatformSpec::default());
    }

    #[test]
    fn default_platform_is_a_single_gpu_graph() {
        let p = PlatformSpec::default();
        assert_eq!(p.n_gpus(), 1);
        assert_eq!(p.gpu_spec(0), &p.gpu);
        assert_eq!(p.peer_path(0, 0), PeerPath::HostStaged);
        // The device graph is invisible to the historical constructors.
        assert_eq!(PlatformSpec::multi_gpu_nvlink(1).extra_gpus.len(), 0);
        assert_eq!(PlatformSpec::multi_gpu_pcie(1), PlatformSpec::default());
    }

    #[test]
    fn nvlink_topology_is_fully_connected() {
        let p = PlatformSpec::multi_gpu_nvlink(4);
        assert_eq!(p.n_gpus(), 4);
        for src in 0..4 {
            for dst in 0..4 {
                match p.peer_path(src, dst) {
                    PeerPath::Direct(link) if src != dst => {
                        assert_eq!(link, LinkSpec::nvlink());
                        // NVLink is strictly better than host PCIe.
                        assert!(link.bandwidth > p.pcie.bandwidth);
                        assert!(link.latency_ns < p.pcie.latency_ns);
                    }
                    PeerPath::HostStaged if src == dst => {}
                    other => panic!("unexpected path {src}->{dst}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn pcie_topology_bounces_through_the_host() {
        let p = PlatformSpec::multi_gpu_pcie(4);
        assert_eq!(p.n_gpus(), 4);
        assert_eq!(p.peer_path(0, 3), PeerPath::HostStaged);
        assert_eq!(p.peer_path(2, 1), PeerPath::HostStaged);
        for d in 0..4 {
            assert_eq!(p.gpu_spec(d), &GpuSpec::default());
        }
    }
}
