//! Chrome-trace export: the simulated equivalent of an Nsight Systems
//! `.nsys-rep`, viewable in `chrome://tracing` / Perfetto.
//!
//! Events are emitted in the Trace Event Format ("X" complete events):
//! GPU kernels, PCIe transfers, host work and warm-up each get their own
//! track (`tid`), and profiler scopes are emitted as a separate process
//! so module nesting is visible above the hardware lanes.

use dgnn_device::{EventCategory, Executor, Place};

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn track(place: Place, category: EventCategory) -> (u32, &'static str) {
    match (place, category) {
        (_, c) if c.is_warmup() => (3, "warmup"),
        (Place::Gpu, _) => (0, "gpu"),
        (Place::Pcie, _) => (1, "pcie"),
        (Place::Cpu, _) => (2, "cpu"),
    }
}

/// Serializes an executor's timeline and scopes as a Chrome-trace JSON
/// string. Durations are microseconds of *simulated* time.
///
/// ```
/// use dgnn_device::{ExecMode, Executor, KernelDesc, PlatformSpec};
/// use dgnn_profile::chrome_trace;
///
/// let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
/// ex.scope("inference", |ex| { ex.launch(KernelDesc::gemm("mm", 8, 8, 8)); });
/// let json = chrome_trace(&ex);
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"mm\""));
/// ```
pub fn chrome_trace(ex: &Executor) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |entry: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&entry);
    };

    for e in ex.timeline().events() {
        let (tid, lane) = track(e.place, e.category);
        let args = format!(
            "{{\"scope\":\"{}\",\"flops\":{},\"bytes\":{},\"occupancy\":{:.4}}}",
            escape(&e.scope),
            e.flops,
            e.bytes,
            e.occupancy
        );
        push(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{lane}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{args}}}",
                escape(e.label),
                e.start.as_nanos() as f64 / 1e3,
                e.duration().as_nanos() as f64 / 1e3,
            ),
            &mut first,
        );
    }
    for s in ex.scopes() {
        push(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"scope\",\"ph\":\"X\",\"pid\":2,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                escape(s.name()),
                s.depth,
                s.start.as_nanos() as f64 / 1e3,
                s.duration().as_nanos() as f64 / 1e3,
            ),
            &mut first,
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, HostWork, KernelDesc, PlatformSpec, TransferDir};

    fn sample_executor() -> Executor {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.scope("inference", |ex| {
            ex.scope("sampling", |ex| {
                ex.host(HostWork::irregular("sample", 1_000, 2_048));
            });
            ex.transfer(TransferDir::H2D, 4_096);
            ex.launch(KernelDesc::gemm("mm", 16, 16, 16));
        });
        ex
    }

    #[test]
    fn trace_is_valid_jsonish_and_complete() {
        let ex = sample_executor();
        let json = chrome_trace(&ex);
        assert!(json.starts_with('{') && json.ends_with('}'));
        // One entry per timeline event + per scope.
        let entries = json.matches("\"ph\":\"X\"").count();
        assert_eq!(entries, ex.timeline().len() + ex.scopes().len());
        assert!(json.contains("\"memcpy_h2d\""));
        assert!(json.contains("\"cuda_context_init\""));
        assert!(json.contains("\"cat\":\"scope\""));
        // Balanced braces (cheap structural sanity).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn lanes_separate_gpu_pcie_cpu_warmup() {
        let json = chrome_trace(&sample_executor());
        for lane in [
            "\"cat\":\"gpu\"",
            "\"cat\":\"pcie\"",
            "\"cat\":\"cpu\"",
            "\"cat\":\"warmup\"",
        ] {
            assert!(json.contains(lane), "missing lane {lane}");
        }
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
