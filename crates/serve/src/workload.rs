//! Deterministic request-stream generation.
//!
//! The base process is Poisson: inter-arrival gaps are drawn from an
//! exponential distribution via inverse-transform sampling on a seeded
//! [`TensorRng`], then rounded to integer (≥ 1) virtual nanoseconds so
//! two requests never share an instant and every downstream computation
//! stays bit-deterministic. Each request is independently assigned a
//! model from a weighted mix.
//!
//! [`WorkloadShape`] layers fleet-scale traffic shapes on top:
//! non-homogeneous arrivals (diurnal sinusoid, flash-crowd burst) via
//! Lewis–Shedler thinning against the peak rate, and heavy-tailed
//! per-user sessions whose requests share a per-session model affinity.
//! All shapes run on the same seeded streams, so a `(seed, shape)` pair
//! always reproduces the identical schedule.

use std::fmt;

use dgnn_device::DurationNs;
use dgnn_tensor::TensorRng;

/// Smallest accepted rate, in events per simulated second. Below this
/// the expected inter-arrival gap exceeds ~31 simulated years and
/// `gap_s * 1e9` can overflow to infinity (for subnormal rates it
/// always does), which `as u64` then silently saturates — turning a
/// configuration mistake into a nonsense schedule instead of an error.
pub const MIN_RATE: f64 = 1e-9;

/// A rejected workload parameter: the typed error behind
/// [`validate_rate`], [`WorkloadShape::validate`],
/// [`crate::ServeConfig::validate`], [`crate::FleetConfig::validate`]
/// and [`crate::StreamingConfig::validate`]. Despite the name it also
/// covers shape parameters (amplitude, multiplier, session length) —
/// `what` names the offending knob.
#[derive(Debug, Clone, PartialEq)]
pub struct RateError {
    /// Which parameter was rejected (e.g. `"arrival rate"`).
    pub what: &'static str,
    /// The offending value.
    pub value: f64,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} is invalid: {}",
            self.what, self.value, self.reason
        )?;
        if self.what.ends_with("rate") {
            write!(
                f,
                " (rates must be finite values >= {MIN_RATE:e} per second)"
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for RateError {}

/// Validates an events-per-simulated-second rate. Rejects NaN and
/// infinities, zero and negatives, and positive values below
/// [`MIN_RATE`] (including every subnormal), whose exponential gaps
/// would overflow the integer-nanosecond clock.
///
/// # Errors
///
/// Returns a [`RateError`] naming the parameter and the reason.
pub fn validate_rate(what: &'static str, rate: f64) -> Result<(), RateError> {
    let reason = if rate.is_nan() {
        "not a number"
    } else if rate.is_infinite() {
        "not finite"
    } else if rate <= 0.0 {
        "not positive"
    } else if rate < MIN_RATE {
        "too small — the expected gap overflows the virtual clock"
    } else {
        return Ok(());
    };
    Err(RateError {
        what,
        value: rate,
        reason,
    })
}

/// One inference request: a query for one unit of work (one mini-batch
/// at the target model's configured batch size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Dense request id (arrival order).
    pub id: usize,
    /// Index into the served model mix.
    pub model: usize,
    /// Virtual arrival time.
    pub arrival: DurationNs,
}

/// Generates `n` requests at `rate_rps` expected arrivals per simulated
/// second, with models drawn from `weights` (need not be normalized).
///
/// # Panics
///
/// Panics when `rate_rps` fails [`validate_rate`], `weights` is empty,
/// or the weights sum to zero. Call [`validate_rate`] (or
/// [`crate::ServeConfig::validate`]) first to get the typed
/// [`RateError`] instead of a panic.
pub fn generate(seed: u64, n: usize, rate_rps: f64, weights: &[f64]) -> Vec<Request> {
    if let Err(e) = validate_rate("arrival rate", rate_rps) {
        panic!("{e}");
    }
    assert!(!weights.is_empty(), "model mix must not be empty");
    let total_weight: f64 = weights.iter().sum();
    assert!(total_weight > 0.0, "model mix weights must sum > 0");

    // Distinct RNG streams for gaps and mix assignment keep the two
    // decisions independent of each other's draw counts.
    let mut gap_rng = TensorRng::seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5e2e);
    let mut mix_rng = TensorRng::seed(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ 0x313a);

    let mut t_ns = 0u64;
    (0..n)
        .map(|id| {
            // Exponential gap: -ln(1 - u) / rate, u ∈ [0, 1).
            let u = gap_rng.unit_f64();
            let gap_s = -(1.0 - u).ln() / rate_rps;
            #[expect(clippy::cast_possible_truncation, reason = "gaps are ≪ u64::MAX ns")]
            #[expect(clippy::cast_sign_loss, reason = "gap_s ≥ 0 by construction")]
            let gap_ns = ((gap_s * 1e9).round() as u64).max(1);
            t_ns += gap_ns;

            let mut pick = mix_rng.unit_f64() * total_weight;
            let mut model = weights.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    model = i;
                    break;
                }
                pick -= w;
            }
            Request {
                id,
                model,
                arrival: DurationNs::from_nanos(t_ns),
            }
        })
        .collect()
}

/// Traffic shape layered on the base Poisson process. All shapes keep
/// the long-run average rate at the configured `rate_rps`; they differ
/// in how arrivals cluster in time and (for sessions) across models.
///
/// Non-homogeneous shapes use Lewis–Shedler thinning: candidate gaps
/// are drawn at the peak rate, then each candidate is accepted with
/// probability `λ(t) / λ_max` from an independent seeded stream, so the
/// accepted process follows the time-varying intensity exactly while
/// staying bit-deterministic per seed.
///
/// ```
/// use dgnn_serve::{generate_shaped, WorkloadShape};
/// use dgnn_device::DurationNs;
///
/// let shape = WorkloadShape::FlashCrowd {
///     at: DurationNs::from_secs_f64(1.0),
///     duration: DurationNs::from_secs_f64(0.5),
///     multiplier: 8.0,
/// };
/// shape.validate(200.0).unwrap();
/// let reqs = generate_shaped(7, 400, 200.0, &[1.0, 1.0], &shape);
/// assert_eq!(reqs.len(), 400);
/// // Arrivals are strictly increasing regardless of shape.
/// assert!(reqs.windows(2).all(|w| w[0].arrival < w[1].arrival));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadShape {
    /// Homogeneous Poisson arrivals — identical to [`generate`].
    Poisson,
    /// Sinusoidal day/night cycle:
    /// `λ(t) = rate · (1 + amplitude · sin(2π t / period))`.
    Diurnal {
        /// Length of one full cycle, in virtual time.
        period: DurationNs,
        /// Peak-to-mean swing, in `[0, 1)`. `0.8` means the peak rate
        /// is 1.8× the mean and the trough 0.2×.
        amplitude: f64,
    },
    /// A flash crowd: baseline Poisson traffic, except the rate jumps
    /// to `rate · multiplier` for `duration` starting at `at`.
    FlashCrowd {
        /// Burst start, in virtual time.
        at: DurationNs,
        /// Burst length, in virtual time.
        duration: DurationNs,
        /// Rate multiplier during the burst (≥ 1).
        multiplier: f64,
    },
    /// Heavy-tailed per-user sessions: session starts are Poisson at
    /// `rate / mean_length`, each session issues a Pareto-distributed
    /// (α = 1.5) number of requests — mean `mean_length`, capped at
    /// `16 · mean_length` — separated by exponential think gaps, and
    /// every request in a session targets the same model, drawn once
    /// per session from the mix. This is the affinity-friendly shape:
    /// a router that keeps sessions on warm replicas avoids cold
    /// starts entirely.
    Sessions {
        /// Mean requests per session (≥ 1).
        mean_length: f64,
        /// Mean think gap between a session's requests.
        think_time: DurationNs,
    },
}

impl WorkloadShape {
    /// Short stable label for report lines and BENCH records.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadShape::Poisson => "poisson",
            WorkloadShape::Diurnal { .. } => "diurnal",
            WorkloadShape::FlashCrowd { .. } => "flash_crowd",
            WorkloadShape::Sessions { .. } => "sessions",
        }
    }

    /// Validates the base rate together with this shape's parameters,
    /// including the effective peak rate a thinning shape will sample
    /// candidate gaps at.
    ///
    /// # Errors
    ///
    /// Returns a [`RateError`] naming the offending parameter.
    pub fn validate(&self, rate_rps: f64) -> Result<(), RateError> {
        validate_rate("arrival rate", rate_rps)?;
        let err = |what, value, reason| {
            Err(RateError {
                what,
                value,
                reason,
            })
        };
        match *self {
            WorkloadShape::Poisson => Ok(()),
            WorkloadShape::Diurnal { period, amplitude } => {
                if period == DurationNs::ZERO {
                    return err("diurnal period", 0.0, "not positive");
                }
                if !amplitude.is_finite() || !(0.0..1.0).contains(&amplitude) {
                    return err("diurnal amplitude", amplitude, "not in [0, 1)");
                }
                validate_rate("diurnal peak rate", rate_rps * (1.0 + amplitude))
            }
            WorkloadShape::FlashCrowd {
                duration,
                multiplier,
                ..
            } => {
                if duration == DurationNs::ZERO {
                    return err("flash-crowd duration", 0.0, "not positive");
                }
                if !multiplier.is_finite() || multiplier < 1.0 {
                    return err("flash-crowd multiplier", multiplier, "not >= 1");
                }
                validate_rate("flash-crowd peak rate", rate_rps * multiplier)
            }
            WorkloadShape::Sessions {
                mean_length,
                think_time,
            } => {
                if !mean_length.is_finite() || mean_length < 1.0 {
                    return err("session mean length", mean_length, "not >= 1");
                }
                if think_time == DurationNs::ZERO {
                    return err("session think time", 0.0, "not positive");
                }
                validate_rate("session start rate", rate_rps / mean_length)
            }
        }
    }
}

/// Exponential gap in integer nanoseconds (≥ 1) at `rate` events per
/// second, via inverse-transform sampling.
fn exp_gap_ns(rng: &mut TensorRng, rate: f64) -> u64 {
    let u = rng.unit_f64();
    let gap_s = -(1.0 - u).ln() / rate;
    #[expect(clippy::cast_possible_truncation, reason = "gaps are ≪ u64::MAX ns")]
    #[expect(clippy::cast_sign_loss, reason = "gap_s ≥ 0 by construction")]
    let gap_ns = ((gap_s * 1e9).round() as u64).max(1);
    gap_ns
}

/// Weighted model draw, identical discipline to [`generate`].
fn draw_model(rng: &mut TensorRng, weights: &[f64], total_weight: f64) -> usize {
    let mut pick = rng.unit_f64() * total_weight;
    let mut model = weights.len() - 1;
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            model = i;
            break;
        }
        pick -= w;
    }
    model
}

/// Generates `n` requests at a long-run average of `rate_rps` arrivals
/// per simulated second, shaped by `shape`. With
/// [`WorkloadShape::Poisson`] this is exactly [`generate`] (same seed →
/// same stream).
///
/// # Panics
///
/// Panics when [`WorkloadShape::validate`] rejects the parameters or
/// the model mix is empty / sums to zero. Call `validate` first to get
/// the typed [`RateError`] instead of a panic.
#[must_use]
pub fn generate_shaped(
    seed: u64,
    n: usize,
    rate_rps: f64,
    weights: &[f64],
    shape: &WorkloadShape,
) -> Vec<Request> {
    if let Err(e) = shape.validate(rate_rps) {
        panic!("{e}");
    }
    assert!(!weights.is_empty(), "model mix must not be empty");
    let total_weight: f64 = weights.iter().sum();
    assert!(total_weight > 0.0, "model mix weights must sum > 0");

    match *shape {
        WorkloadShape::Poisson => generate(seed, n, rate_rps, weights),
        WorkloadShape::Diurnal { period, amplitude } => {
            let peak = rate_rps * (1.0 + amplitude);
            thinned(seed, n, peak, weights, total_weight, |t_ns| {
                let phase = t_ns as f64 / period.as_nanos() as f64 * std::f64::consts::TAU;
                rate_rps * (1.0 + amplitude * phase.sin())
            })
        }
        WorkloadShape::FlashCrowd {
            at,
            duration,
            multiplier,
        } => {
            let peak = rate_rps * multiplier;
            let (start, end) = (
                at.as_nanos(),
                at.as_nanos().saturating_add(duration.as_nanos()),
            );
            thinned(seed, n, peak, weights, total_weight, |t_ns| {
                if (start..end).contains(&t_ns) {
                    rate_rps * multiplier
                } else {
                    rate_rps
                }
            })
        }
        WorkloadShape::Sessions {
            mean_length,
            think_time,
        } => sessions(
            seed,
            n,
            rate_rps,
            weights,
            total_weight,
            mean_length,
            think_time,
        ),
    }
}

/// Lewis–Shedler thinning: draw candidate gaps at the peak rate, accept
/// each candidate with probability `intensity(t) / peak` from an
/// independent stream. Distinct streams for gaps, acceptance, and mix
/// keep the three decisions decorrelated.
fn thinned(
    seed: u64,
    n: usize,
    peak: f64,
    weights: &[f64],
    total_weight: f64,
    intensity: impl Fn(u64) -> f64,
) -> Vec<Request> {
    let mut gap_rng = TensorRng::seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5e2e);
    let mut accept_rng = TensorRng::seed(seed.wrapping_mul(0xd6e8_feb8_6659_fd93) ^ 0x7b1d);
    let mut mix_rng = TensorRng::seed(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ 0x313a);

    let mut out = Vec::with_capacity(n);
    let mut t_ns = 0u64;
    while out.len() < n {
        t_ns += exp_gap_ns(&mut gap_rng, peak);
        if accept_rng.unit_f64() * peak <= intensity(t_ns) {
            out.push(Request {
                id: out.len(),
                model: draw_model(&mut mix_rng, weights, total_weight),
                arrival: DurationNs::from_nanos(t_ns),
            });
        }
    }
    out
}

/// Heavy-tailed per-user sessions. Session starts are Poisson at
/// `rate / mean_length`; lengths are Pareto(α = 1.5) scaled so the mean
/// is `mean_length`, capped at `16 · mean_length`; think gaps between a
/// session's requests are exponential with mean `think_time`. The
/// merged stream is sorted by arrival and equal instants are bumped by
/// 1 ns so arrivals stay strictly increasing.
fn sessions(
    seed: u64,
    n: usize,
    rate_rps: f64,
    weights: &[f64],
    total_weight: f64,
    mean_length: f64,
    think_time: DurationNs,
) -> Vec<Request> {
    const ALPHA: f64 = 1.5;
    let session_rate = rate_rps / mean_length;
    let think_rate = 1e9 / think_time.as_nanos() as f64;
    // Pareto(α) has mean α/(α-1)·x_m; scale x_m so the mean lands on
    // mean_length.
    let x_m = mean_length * (ALPHA - 1.0) / ALPHA;
    let cap = (mean_length * 16.0).max(1.0);

    let mut start_rng = TensorRng::seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5e2e);
    let mut len_rng = TensorRng::seed(seed.wrapping_mul(0xd6e8_feb8_6659_fd93) ^ 0x7b1d);
    let mut think_rng = TensorRng::seed(seed.wrapping_mul(0x94d0_49bb_1331_11eb) ^ 0x1963);
    let mut mix_rng = TensorRng::seed(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ 0x313a);

    let mut arrivals: Vec<(u64, usize)> = Vec::with_capacity(n * 2);
    let mut t_ns = 0u64;
    while arrivals.len() < n {
        t_ns += exp_gap_ns(&mut start_rng, session_rate);
        let model = draw_model(&mut mix_rng, weights, total_weight);
        // Inverse-transform Pareto: x_m / (1 - u)^(1/α).
        let u = len_rng.unit_f64();
        let raw = x_m / (1.0 - u).powf(1.0 / ALPHA);
        #[expect(
            clippy::cast_possible_truncation,
            reason = "capped at 16 · mean_length"
        )]
        #[expect(clippy::cast_sign_loss, reason = "Pareto draws are positive")]
        let len = (raw.min(cap).round() as u64).max(1);
        let mut s_ns = t_ns;
        for k in 0..len {
            if k > 0 {
                s_ns += exp_gap_ns(&mut think_rng, think_rate);
            }
            arrivals.push((s_ns, model));
        }
    }
    // Sessions interleave, so the merged stream needs a sort; the
    // (time, model) key plus the monotone 1-ns bump keeps ordering and
    // ids deterministic.
    arrivals.sort_unstable();
    arrivals.truncate(n);
    let mut prev = 0u64;
    arrivals
        .into_iter()
        .enumerate()
        .map(|(id, (t, model))| {
            let t = t.max(prev + 1);
            prev = t;
            Request {
                id,
                model,
                arrival: DurationNs::from_nanos(t),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let reqs = generate(7, 500, 1_000.0, &[1.0, 1.0]);
        assert_eq!(reqs.len(), 500);
        for w in reqs.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 200, 50.0, &[3.0, 1.0]);
        let b = generate(42, 200, 50.0, &[3.0, 1.0]);
        assert_eq!(a, b);
        let c = generate(43, 200, 50.0, &[3.0, 1.0]);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        let rate = 100.0; // 10 ms expected gap
        let reqs = generate(1, 2_000, rate, &[1.0]);
        let mean_gap_s = reqs.last().unwrap().arrival.as_secs_f64() / reqs.len() as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap_s - expected).abs() < expected * 0.15,
            "mean gap {mean_gap_s} vs expected {expected}"
        );
    }

    #[test]
    fn mix_respects_weights() {
        let reqs = generate(9, 4_000, 1_000.0, &[3.0, 1.0]);
        let first = reqs.iter().filter(|r| r.model == 0).count();
        let share = first as f64 / reqs.len() as f64;
        assert!(
            (share - 0.75).abs() < 0.05,
            "model 0 share {share} should be ≈ 0.75"
        );
    }

    #[test]
    #[should_panic(expected = "not positive")]
    fn zero_rate_is_rejected() {
        generate(1, 10, 0.0, &[1.0]);
    }

    #[test]
    fn validate_rate_returns_typed_errors() {
        assert!(validate_rate("r", 100.0).is_ok());
        assert!(validate_rate("r", MIN_RATE).is_ok());
        let zero = validate_rate("arrival rate", 0.0).unwrap_err();
        assert_eq!(zero.reason, "not positive");
        assert!(zero.to_string().contains("arrival rate"));
        assert_eq!(validate_rate("r", -5.0).unwrap_err().reason, "not positive");
        assert_eq!(
            validate_rate("r", f64::NAN).unwrap_err().reason,
            "not a number"
        );
        assert_eq!(
            validate_rate("r", f64::INFINITY).unwrap_err().reason,
            "not finite"
        );
        // Subnormal and tiny-normal rates: the exponential gap would
        // round through infinity and silently saturate `as u64`.
        assert!(validate_rate("r", f64::MIN_POSITIVE / 2.0).is_err());
        assert!(validate_rate("r", 1e-300).is_err());
    }

    fn all_shapes() -> Vec<WorkloadShape> {
        vec![
            WorkloadShape::Poisson,
            WorkloadShape::Diurnal {
                period: DurationNs::from_secs_f64(2.0),
                amplitude: 0.8,
            },
            WorkloadShape::FlashCrowd {
                at: DurationNs::from_secs_f64(1.0),
                duration: DurationNs::from_secs_f64(0.5),
                multiplier: 6.0,
            },
            WorkloadShape::Sessions {
                mean_length: 4.0,
                think_time: DurationNs::from_millis(5),
            },
        ]
    }

    #[test]
    fn shaped_streams_are_strictly_increasing_and_deterministic() {
        for shape in all_shapes() {
            let a = generate_shaped(11, 300, 400.0, &[2.0, 1.0, 1.0], &shape);
            let b = generate_shaped(11, 300, 400.0, &[2.0, 1.0, 1.0], &shape);
            assert_eq!(a, b, "{} must replay bit-identically", shape.label());
            assert_eq!(a.len(), 300);
            for (i, w) in a.windows(2).enumerate() {
                assert!(
                    w[0].arrival < w[1].arrival,
                    "{} arrivals not increasing at {i}",
                    shape.label()
                );
            }
            assert!(a.iter().enumerate().all(|(i, r)| r.id == i));
            let c = generate_shaped(12, 300, 400.0, &[2.0, 1.0, 1.0], &shape);
            assert_ne!(a, c, "{} must vary with the seed", shape.label());
        }
    }

    #[test]
    fn poisson_shape_matches_generate() {
        let base = generate(21, 100, 250.0, &[1.0, 2.0]);
        let shaped = generate_shaped(21, 100, 250.0, &[1.0, 2.0], &WorkloadShape::Poisson);
        assert_eq!(base, shaped);
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_burst() {
        let shape = WorkloadShape::FlashCrowd {
            at: DurationNs::from_secs_f64(1.0),
            duration: DurationNs::from_secs_f64(1.0),
            multiplier: 10.0,
        };
        let reqs = generate_shaped(5, 1_000, 100.0, &[1.0], &shape);
        let window = DurationNs::from_secs_f64(1.0)..DurationNs::from_secs_f64(2.0);
        let in_burst = reqs.iter().filter(|r| window.contains(&r.arrival)).count();
        // Burst-second intensity is 10× baseline; well over half of the
        // stream should land inside it.
        assert!(
            in_burst * 2 > reqs.len(),
            "only {in_burst}/{} arrivals in the burst window",
            reqs.len()
        );
    }

    #[test]
    fn diurnal_peak_half_outdraws_the_trough_half() {
        let period = DurationNs::from_secs_f64(4.0);
        let shape = WorkloadShape::Diurnal {
            period,
            amplitude: 0.9,
        };
        let reqs = generate_shaped(3, 2_000, 500.0, &[1.0], &shape);
        // sin > 0 on the first half of each cycle, < 0 on the second.
        let (mut peak, mut trough) = (0usize, 0usize);
        for r in &reqs {
            let into = r.arrival.as_nanos() % period.as_nanos();
            if into < period.as_nanos() / 2 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > trough * 2,
            "peak half {peak} should dominate trough half {trough}"
        );
    }

    #[test]
    fn sessions_share_model_affinity_in_runs() {
        let shape = WorkloadShape::Sessions {
            mean_length: 6.0,
            think_time: DurationNs::from_micros(50),
        };
        let reqs = generate_shaped(9, 600, 2_000.0, &[1.0, 1.0, 1.0, 1.0], &shape);
        // Per-session affinity means consecutive requests repeat the
        // same model far more often than the 1/4 chance an independent
        // mix would give.
        let repeats = reqs.windows(2).filter(|w| w[0].model == w[1].model).count();
        let share = repeats as f64 / (reqs.len() - 1) as f64;
        assert!(
            share > 0.4,
            "adjacent-model repeat share {share} should exceed independent 0.25"
        );
    }

    #[test]
    fn shape_validation_rejects_bad_parameters() {
        let bad_amp = WorkloadShape::Diurnal {
            period: DurationNs::from_secs_f64(1.0),
            amplitude: 1.0,
        };
        assert_eq!(bad_amp.validate(100.0).unwrap_err().reason, "not in [0, 1)");
        let bad_period = WorkloadShape::Diurnal {
            period: DurationNs::ZERO,
            amplitude: 0.5,
        };
        assert_eq!(
            bad_period.validate(100.0).unwrap_err().what,
            "diurnal period"
        );
        let bad_mult = WorkloadShape::FlashCrowd {
            at: DurationNs::ZERO,
            duration: DurationNs::from_secs_f64(1.0),
            multiplier: 0.5,
        };
        assert_eq!(bad_mult.validate(100.0).unwrap_err().reason, "not >= 1");
        let bad_len = WorkloadShape::Sessions {
            mean_length: 0.5,
            think_time: DurationNs::from_millis(1),
        };
        assert_eq!(
            bad_len.validate(100.0).unwrap_err().what,
            "session mean length"
        );
        // The peak rate is validated too: an enormous multiplier pushes
        // the thinning envelope past what the clock can represent.
        let huge = WorkloadShape::FlashCrowd {
            at: DurationNs::ZERO,
            duration: DurationNs::from_secs_f64(1.0),
            multiplier: f64::INFINITY,
        };
        assert!(huge.validate(100.0).is_err());
        assert!(WorkloadShape::Poisson.validate(0.0).is_err());
    }
}
