//! LINT3 adversarial fixture: the serving layer writes the timeline
//! itself instead of routing work through the Dispatcher/Executor, so
//! priced work and computed work can drift apart.

pub fn record(tl: &mut Timeline) {
    tl.push(TimelineEvent { lane: 0, start_ns: 0, end_ns: 10 });
    let clock = tl.clock_mut(0);
    *clock += 10;
}
