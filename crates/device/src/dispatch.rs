//! The unified device-dispatch layer: one call executes the functional
//! math, charges the kernel, and keeps tensor residence honest.
//!
//! Before this layer existed, every model hand-paired a `KernelDesc`
//! launch with the matching `dgnn-tensor` call and hand-inserted
//! `transfer()` calls where data crossed PCIe — three things that could
//! silently drift apart. [`Dispatcher`] fuses them:
//!
//! * each typed op (e.g. [`Dispatcher::matmul`]) derives its
//!   [`OpDescriptor`] from the *actual operand shapes*, so priced work
//!   equals computed work by construction;
//! * operands carry a residence tag ([`DeviceTensor`]); any op whose
//!   input is not resident on the compute device charges the H2D/D2H
//!   copy automatically, so transfers are derived from residence
//!   crossings rather than sprinkled through model code;
//! * in CPU-only mode the compute device *is* the host, so no crossing
//!   ever occurs and no transfer is ever charged — the paper's
//!   "CPU inference has no memcpy" property falls out for free.
//!
//! Representative-batch economics are handled by a per-tensor `scale`:
//! models that materialize only a capped number of representative rows
//! tag the tensor with the logical/physical row ratio, and every
//! descriptor (and residence copy) is scaled by it. Because all batch
//! dimensions in the model zoo are linear in the row count, the scaled
//! price equals the full-batch price exactly.
//!
//! ## Transfer coalescing
//!
//! A dispatcher created with [`Dispatcher::with_coalescing`] defers
//! residence-crossing copies instead of pricing each one immediately:
//! same-direction bytes accumulate in a staging buffer and
//! [`Dispatcher::flush_transfers`] charges them as *one* PCIe
//! transaction per direction — one link latency plus summed
//! bytes/bandwidth. This models batching many small per-tensor memcpys
//! (node features, timestamps, index arrays) into a packed staging
//! buffer, the §5 mitigation for the data-movement bottleneck. Total
//! bytes are conserved exactly; only the event count (and therefore the
//! per-transfer latency overhead) shrinks. Callers that enable
//! coalescing own the matching [`Dispatcher::flush_transfers`] — the
//! byte-conservation invariant tests enforce that no staged copy
//! escapes pricing.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use dgnn_tensor::cost::OpDescriptor;
use dgnn_tensor::ops::{activation, elementwise, manip, matmul, reduce};
use dgnn_tensor::{cost, Result, Tensor};

use crate::cache::TensorClass;
use crate::event::{Place, TransferDir};
use crate::executor::{ExecMode, Executor};
use crate::kernel::{HostWork, KernelDesc};
use crate::spec::DeviceId;
use crate::stream::{EventId, StreamId};
use crate::time::DurationNs;
use crate::trace::{AccessKind, TensorId};

/// Process-wide supply of [`DeviceTensor`] buffer identities, consumed
/// by the provenance trace. Clones share their origin's id (they alias
/// the same logical buffer); ids carry no meaning beyond uniqueness.
static NEXT_TENSOR_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_tensor_id() -> TensorId {
    NEXT_TENSOR_ID.fetch_add(1, Ordering::Relaxed)
}

/// A tensor tagged with its simulated residence and a logical-batch
/// scale factor.
///
/// `scale` is the ratio of logical rows to physically materialized rows
/// (1.0 for fully materialized tensors); all kernel pricing and
/// transfer byte counts derived from this tensor are multiplied by it.
#[derive(Debug, Clone)]
pub struct DeviceTensor {
    data: Tensor,
    place: Cell<Place>,
    scale: f64,
    /// Buffer identity for the provenance trace. Clones keep it: they
    /// alias the same logical buffer.
    id: TensorId,
}

impl PartialEq for DeviceTensor {
    /// Semantic equality: same values, residence and scale. Buffer
    /// identity is deliberately excluded — two independently built
    /// tensors with equal contents compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data && self.place == other.place && self.scale == other.scale
    }
}

impl DeviceTensor {
    /// Wraps host-resident data (fully materialized, scale 1).
    pub fn host(data: Tensor) -> Self {
        DeviceTensor {
            data,
            place: Cell::new(Place::Cpu),
            scale: 1.0,
            id: fresh_tensor_id(),
        }
    }

    /// Wraps host-resident data standing in for `scale`× its physical
    /// row count (representative-batch pricing).
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not finite and positive.
    pub fn host_scaled(data: Tensor, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive"
        );
        DeviceTensor {
            data,
            place: Cell::new(Place::Cpu),
            scale,
            id: fresh_tensor_id(),
        }
    }

    /// The functional values.
    pub fn data(&self) -> &Tensor {
        &self.data
    }

    /// Buffer identity in the provenance trace.
    pub fn trace_id(&self) -> TensorId {
        self.id
    }

    /// Current simulated residence.
    pub fn place(&self) -> Place {
        self.place.get()
    }

    /// Logical/physical batch ratio.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Unwraps the functional values.
    pub fn into_inner(self) -> Tensor {
        self.data
    }

    /// Bytes this tensor logically occupies (physical bytes × scale).
    #[expect(
        clippy::cast_possible_truncation,
        reason = "rounded byte counts fit u64"
    )]
    pub fn logical_bytes(&self) -> u64 {
        (cost::f32_bytes(self.data.len()) as f64 * self.scale).round() as u64
    }
}

/// An input a dispatched op can consume: either a residence-tracked
/// [`DeviceTensor`] (activations) or a plain [`Tensor`] (weights, which
/// live on the compute device from `model_init` onward and never move).
pub trait Operand {
    /// The functional values.
    fn tensor(&self) -> &Tensor;

    /// Logical/physical batch ratio (1 for weights).
    fn scale(&self) -> f64 {
        1.0
    }

    /// Re-tags the operand as resident at `target`, returning the bytes
    /// that must cross PCIe, or `None` when already there (or when the
    /// operand's residence is not tracked).
    fn relocate(&self, target: Place) -> Option<u64>;

    /// Buffer identity for the provenance trace (`None` for weights and
    /// other untracked operands).
    fn operand_id(&self) -> Option<TensorId> {
        None
    }
}

impl Operand for Tensor {
    fn tensor(&self) -> &Tensor {
        self
    }

    fn relocate(&self, _target: Place) -> Option<u64> {
        None
    }
}

impl Operand for DeviceTensor {
    fn tensor(&self) -> &Tensor {
        &self.data
    }

    fn scale(&self) -> f64 {
        self.scale
    }

    fn relocate(&self, target: Place) -> Option<u64> {
        if self.place.get() == target {
            None
        } else {
            self.place.set(target);
            Some(self.logical_bytes())
        }
    }

    fn operand_id(&self) -> Option<TensorId> {
        Some(self.id)
    }
}

/// Result of one [`Dispatcher::fetch_rows`] call: how much of the
/// requested payload was served device-resident vs fetched over PCIe.
/// Rows are physical (representative) counts; bytes are logical
/// (scale-multiplied), matching what the timeline priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheFetch {
    /// Rows found resident (H2D skipped).
    pub hit_rows: u64,
    /// Rows fetched over PCIe (and inserted).
    pub miss_rows: u64,
    /// Logical bytes that skipped the crossing.
    pub hit_bytes: u64,
    /// Logical bytes priced as one H2D fetch.
    pub miss_bytes: u64,
}

impl CacheFetch {
    /// Hit fraction of this fetch (0 when no rows were requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_rows + self.miss_rows;
        if total == 0 {
            return 0.0;
        }
        self.hit_rows as f64 / total as f64
    }
}

/// Executes tensor math while charging the owning [`Executor`] for every
/// kernel and residence crossing. Create one per inference pass (or per
/// scope) with [`Dispatcher::new`].
///
/// The first op that consumes a host-resident tensor in GPU mode prices
/// its H2D upload automatically; the result is adopted device-resident,
/// so chained ops cross PCIe only once per buffer:
///
/// ```
/// use dgnn_device::{Dispatcher, DeviceTensor, ExecMode, Executor, PlatformSpec};
/// use dgnn_tensor::Tensor;
///
/// let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
/// let mut d = Dispatcher::new(&mut ex);
/// let a = DeviceTensor::host(Tensor::ones(&[4, 8]));
/// let b = DeviceTensor::host(Tensor::ones(&[8, 2]));
/// let y = d.matmul("proj", &a, &b)?;          // prices 2 uploads + 1 GEMM
/// let z = d.relu("act", &y);                  // y is already resident: no copy
/// assert_eq!(z.data().dims(), &[4, 2]);
/// assert_eq!(ex.timeline().transfer_count(None), 2);
/// # Ok::<(), dgnn_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct Dispatcher<'a> {
    ex: &'a mut Executor,
    coalesce: bool,
    /// Deferred transfer bytes, indexed `[H2D, D2H]`.
    pending: [u64; 2],
}

fn dir_index(dir: TransferDir) -> usize {
    match dir {
        TransferDir::H2D => 0,
        TransferDir::D2H => 1,
    }
}

impl<'a> Dispatcher<'a> {
    /// Wraps an executor. Transfers are priced immediately, one event per
    /// residence crossing (the profiled frameworks' behavior).
    pub fn new(ex: &'a mut Executor) -> Self {
        Dispatcher {
            ex,
            coalesce: false,
            pending: [0; 2],
        }
    }

    /// Wraps an executor with transfer coalescing on or off. With it on,
    /// residence crossings accumulate and [`Dispatcher::flush_transfers`]
    /// prices each direction as a single merged transaction.
    pub fn with_coalescing(ex: &'a mut Executor, coalesce: bool) -> Self {
        Dispatcher {
            ex,
            coalesce,
            pending: [0; 2],
        }
    }

    /// Whether transfer coalescing is active.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// Bytes staged for the given direction but not yet priced.
    pub fn pending_transfer_bytes(&self, dir: TransferDir) -> u64 {
        self.pending[dir_index(dir)]
    }

    /// Prices a raw PCIe copy of `bytes` in direction `dir`, subject to
    /// coalescing, without touching residence state. Drivers that
    /// decompose a staged batch payload into its constituent per-tensor
    /// copies use this to price each piece.
    pub fn transfer(&mut self, dir: TransferDir, bytes: u64) {
        self.charge_transfer(dir, bytes, None);
    }

    /// Prices a residence crossing: immediately when coalescing is off,
    /// otherwise into the staging accumulator. `tensor` attributes the
    /// crossing in the provenance trace.
    fn charge_transfer(&mut self, dir: TransferDir, bytes: u64, tensor: Option<TensorId>) {
        if self.coalesce && self.ex.mode() == ExecMode::Gpu {
            self.ex.trace_crossing(tensor, dir, bytes, true);
            self.pending[dir_index(dir)] += bytes;
        } else {
            if self.ex.mode() == ExecMode::Gpu {
                self.ex.trace_crossing(tensor, dir, bytes, false);
            }
            self.ex.transfer(dir, bytes);
        }
    }

    /// Fetches `keys.len()` rows of `row_bytes` bytes each through the
    /// executor's device-resident feature cache: rows already resident
    /// skip their H2D crossing entirely, missing rows are priced as
    /// *one* merged fetch (which composes with coalescing — staged when
    /// coalescing is on, immediate otherwise) and inserted. Per-fetch
    /// pricing only; the functional tensors still flow through
    /// [`Dispatcher::adopt`], so numerics are identical either way.
    ///
    /// `keys` are physical (representative) row identities; `scale` is
    /// the logical/physical ratio applied to the priced byte counts,
    /// exactly like [`DeviceTensor::host_scaled`]. With the cache
    /// disabled every key misses, so the call prices the full payload —
    /// but as one merged transfer, which is why drivers route through
    /// it only when `feature_cache` is configured (keeping cache-off
    /// runs bit-identical to the historical per-piece pricing).
    ///
    /// In CPU-only mode no crossing exists and nothing is priced or
    /// cached, mirroring [`Dispatcher::ensure_resident`].
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not finite and positive.
    pub fn fetch_rows(
        &mut self,
        class: TensorClass,
        keys: &[u64],
        row_bytes: u64,
        scale: f64,
    ) -> CacheFetch {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive"
        );
        if self.ex.mode() != ExecMode::Gpu {
            return CacheFetch::default();
        }
        #[expect(
            clippy::cast_possible_truncation,
            reason = "rounded byte counts fit u64"
        )]
        #[allow(clippy::cast_sign_loss)] // row_bytes and scale are non-negative
        let scaled_row = (row_bytes as f64 * scale).round() as u64;
        let mut fetch = CacheFetch::default();
        for &key in keys {
            if self.ex.cache_probe_insert(class, key, scaled_row) {
                fetch.hit_rows += 1;
            } else {
                fetch.miss_rows += 1;
            }
        }
        fetch.hit_bytes = fetch.hit_rows * scaled_row;
        fetch.miss_bytes = fetch.miss_rows * scaled_row;
        if fetch.hit_rows > 0 {
            self.ex
                .trace_cache_hit(class, fetch.hit_rows, fetch.hit_bytes);
        }
        if fetch.miss_bytes > 0 {
            self.charge_transfer(TransferDir::H2D, fetch.miss_bytes, None);
        }
        fetch
    }

    /// Prices all staged bytes as one merged transfer per direction
    /// (H2D first), returning the total simulated copy time. No-op when
    /// nothing is staged. Pipelined drivers call this on the copy lane at
    /// each batch boundary.
    pub fn flush_transfers(&mut self) -> DurationNs {
        let mut total = DurationNs::ZERO;
        for dir in [TransferDir::H2D, TransferDir::D2H] {
            let bytes = std::mem::take(&mut self.pending[dir_index(dir)]);
            if bytes > 0 {
                self.ex.trace_flush(dir, bytes);
                total += self.ex.transfer(dir, bytes);
            }
        }
        total
    }

    /// The underlying executor (for warm-up, memory and timeline access).
    pub fn executor(&mut self) -> &mut Executor {
        self.ex
    }

    /// Current simulated time.
    pub fn now(&self) -> DurationNs {
        self.ex.now()
    }

    /// Where kernels execute in the current mode.
    pub fn compute_place(&self) -> Place {
        match self.ex.mode() {
            ExecMode::Gpu => Place::Gpu,
            ExecMode::CpuOnly => Place::Cpu,
        }
    }

    /// Moves an operand to the compute device, charging the PCIe copy if
    /// its residence actually crosses. No-op for weights and for
    /// already-resident tensors; never charges in CPU-only mode.
    ///
    /// While tracing is on, logs the crossing (if any) and the operand's
    /// consumption as a kernel argument on the current lane.
    pub fn ensure_resident(&mut self, op: &impl Operand) {
        let target = self.compute_place();
        if let Some(bytes) = op.relocate(target) {
            let dir = if target == Place::Gpu {
                TransferDir::H2D
            } else {
                TransferDir::D2H
            };
            self.charge_transfer(dir, bytes, op.operand_id());
        }
        if let Some(id) = op.operand_id() {
            self.ex.trace_access(id, AccessKind::Arg, target);
        }
    }

    /// Copies a tensor's logical bytes back to the host (the result
    /// read-back every inference pass ends with). No-op when already
    /// host-resident.
    pub fn download(&mut self, t: &DeviceTensor) {
        let device = self.compute_place();
        if let Some(bytes) = t.relocate(Place::Cpu) {
            self.ex.trace_access(t.id, AccessKind::Download, device);
            self.charge_transfer(TransferDir::D2H, bytes, Some(t.id));
        }
    }

    /// Tags freshly computed data as resident on the compute device.
    pub fn adopt(&mut self, data: Tensor, scale: f64) -> DeviceTensor {
        let t = DeviceTensor {
            data,
            place: Cell::new(self.compute_place()),
            scale,
            id: fresh_tensor_id(),
        };
        self.ex.trace_access(t.id, AccessKind::Adopt, t.place.get());
        t
    }

    /// Releases a device-resident tensor: frees its logical bytes from
    /// the compute device's memory tracker and logs the release in the
    /// provenance trace. Any later device-side use of the tensor without
    /// a fresh upload is a use-after-release hazard.
    pub fn release_tensor(&mut self, t: &DeviceTensor) {
        self.ex.trace_release(t.id);
        self.ex.release(t.logical_bytes());
    }

    /// Charges `desc × scale` as one kernel launch without running any
    /// functional math — the low-level primitive for call sites whose
    /// computation spans several kernels (e.g. the per-head attention
    /// loop, which charges scores/softmax/context separately but computes
    /// them in one pass). Prefer the typed ops or [`Dispatcher::fused`].
    pub fn charge(&mut self, desc: OpDescriptor, scale: f64) -> DurationNs {
        self.ex.launch(KernelDesc::from_op(&desc.scaled(scale)))
    }

    /// Runs `f` inside a named profiler scope on the owning executor.
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let token = self.ex.enter_scope(name);
        let result = f(self);
        self.ex.exit_scope(token);
        result
    }

    /// Executes host-side preprocessing work (always on the CPU).
    pub fn host(&mut self, work: HostWork) -> DurationNs {
        self.ex.host(work)
    }

    /// Launches a synchronization marker.
    pub fn synchronize(&mut self) -> DurationNs {
        self.ex.synchronize()
    }

    /// Forks the owning executor's timeline into the three lanes (see
    /// [`Executor::fork_streams`]).
    pub fn fork_streams(&mut self) {
        self.ex.fork_streams();
    }

    /// Forks the owning executor's timeline into `devices × 3` lanes
    /// (see [`Executor::fork_streams_multi`]).
    pub fn fork_streams_multi(&mut self, devices: usize) {
        self.ex.fork_streams_multi(devices);
    }

    /// Joins the lanes back into the serial clock (see
    /// [`Executor::join_streams`]).
    pub fn join_streams(&mut self) -> DurationNs {
        self.ex.join_streams()
    }

    /// Runs `f` with every priced action (kernels, host work, transfer
    /// flushes) placed on `lane`.
    pub fn on_stream<R>(&mut self, lane: StreamId, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.ex.swap_current_stream(Some(lane));
        let result = f(self);
        self.ex.swap_current_stream(prev);
        result
    }

    /// Runs `f` with every priced action targeting `device` (see
    /// [`Executor::on_device`]). Pending coalesced bytes are flushed
    /// first so staged transfers are priced on the device that staged
    /// them, not wherever the dispatcher wanders next.
    pub fn on_device<R>(&mut self, device: DeviceId, f: impl FnOnce(&mut Self) -> R) -> R {
        self.flush_transfers();
        let prev = self.ex.swap_current_device(device);
        let result = f(self);
        self.flush_transfers();
        self.ex.swap_current_device(prev);
        result
    }

    /// The GPU subsequent work targets.
    pub fn current_device(&self) -> DeviceId {
        self.ex.current_device()
    }

    /// Fetches `bytes` owned by device `src` onto the current device,
    /// logging the crossing intent and pricing it on the platform's
    /// interconnect (see [`Executor::peer_transfer`]). Returns the
    /// modeled wall time; free when `src` is the current device.
    pub fn peer_transfer(&mut self, src: DeviceId, bytes: u64) -> DurationNs {
        if self.ex.mode() == ExecMode::Gpu && bytes > 0 && src != self.ex.current_device() {
            self.ex.trace_peer_crossing(src, bytes);
        }
        self.ex.peer_transfer(src, bytes)
    }

    /// Records `lane`'s current clock as a waitable event.
    pub fn record_event(&mut self, lane: StreamId) -> EventId {
        self.ex.record_event(lane)
    }

    /// Stalls `lane` until the recorded event's timestamp.
    pub fn wait_event(&mut self, lane: StreamId, event: EventId) {
        self.ex.wait_event(lane, event);
    }

    /// Escape hatch for fused kernels (gate updates, time encodings,
    /// per-head attention cores): stages nothing, charges `desc × scale`
    /// as one launch, and returns the closure's functional result.
    /// Callers stage inputs with [`Dispatcher::ensure_resident`] first.
    pub fn fused<R>(
        &mut self,
        desc: OpDescriptor,
        scale: f64,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        let result = f()?;
        self.charge(desc, scale);
        Ok(result)
    }

    /// Dense `a[m, k] × b[k, n]`, priced as a GEMM over those shapes.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the functional matmul.
    pub fn matmul(
        &mut self,
        label: &'static str,
        a: &DeviceTensor,
        b: &impl Operand,
    ) -> Result<DeviceTensor> {
        self.ensure_resident(a);
        self.ensure_resident(b);
        let out = a.data.matmul(b.tensor())?;
        let (m, k) = (a.data.dims()[0], a.data.dims()[1]);
        let n = b.tensor().dims()[1];
        self.charge(matmul::matmul_desc(m, k, n).labeled(label), a.scale);
        Ok(self.adopt(out, a.scale))
    }

    /// `a[m, k] × wᵀ` for a weight `w[n, k]` — the linear-layer shape.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the functional transpose/matmul.
    pub fn matmul_nt(
        &mut self,
        label: &'static str,
        a: &DeviceTensor,
        w: &impl Operand,
    ) -> Result<DeviceTensor> {
        self.ensure_resident(a);
        self.ensure_resident(w);
        let out = a.data.matmul(&w.tensor().transpose()?)?;
        let (m, k) = (a.data.dims()[0], a.data.dims()[1]);
        let n = w.tensor().dims()[0];
        self.charge(matmul::matmul_desc(m, k, n).labeled(label), a.scale);
        Ok(self.adopt(out, a.scale))
    }

    /// Row-broadcast bias add over `x[m, n]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the functional broadcast.
    pub fn add_bias(
        &mut self,
        label: &'static str,
        x: &DeviceTensor,
        bias: &impl Operand,
    ) -> Result<DeviceTensor> {
        self.ensure_resident(x);
        self.ensure_resident(bias);
        let out = x.data.add_row_broadcast(bias.tensor())?;
        let (m, n) = (x.data.dims()[0], x.data.dims()[1]);
        self.charge(
            elementwise::add_row_broadcast_desc(m, n).labeled(label),
            x.scale,
        );
        Ok(self.adopt(out, x.scale))
    }

    /// Element-wise binary op priced as one pass over both inputs.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the functional op.
    pub fn binary(
        &mut self,
        label: &'static str,
        a: &DeviceTensor,
        b: &impl Operand,
        f: impl Fn(&Tensor, &Tensor) -> Result<Tensor>,
    ) -> Result<DeviceTensor> {
        self.ensure_resident(a);
        self.ensure_resident(b);
        let out = f(&a.data, b.tensor())?;
        self.charge(
            elementwise::binary_desc(a.data.len()).labeled(label),
            a.scale,
        );
        Ok(self.adopt(out, a.scale))
    }

    /// ReLU over every element.
    pub fn relu(&mut self, label: &'static str, x: &DeviceTensor) -> DeviceTensor {
        self.ensure_resident(x);
        let out = x.data.relu();
        self.charge(activation::relu_desc(x.data.len()).labeled(label), x.scale);
        self.adopt(out, x.scale)
    }

    /// A transcendental activation (sigmoid/tanh/softplus) over every
    /// element.
    pub fn activation(
        &mut self,
        label: &'static str,
        x: &DeviceTensor,
        f: impl Fn(&Tensor) -> Tensor,
    ) -> DeviceTensor {
        self.ensure_resident(x);
        let out = f(&x.data);
        self.charge(
            activation::transcendental_desc(x.data.len()).labeled(label),
            x.scale,
        );
        self.adopt(out, x.scale)
    }

    /// Row-wise softmax over `x[m, n]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the functional softmax.
    pub fn softmax_rows(&mut self, label: &'static str, x: &DeviceTensor) -> Result<DeviceTensor> {
        self.ensure_resident(x);
        let out = x.data.softmax_rows()?;
        let (m, n) = (x.data.dims()[0], x.data.dims()[1]);
        self.charge(reduce::softmax_rows_desc(m, n).labeled(label), x.scale);
        Ok(self.adopt(out, x.scale))
    }

    /// Row reduction (sum or mean) over `x[m, n] → [n]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the functional reduction.
    pub fn reduce_rows(
        &mut self,
        label: &'static str,
        x: &DeviceTensor,
        f: impl Fn(&Tensor) -> Result<Tensor>,
    ) -> Result<DeviceTensor> {
        self.ensure_resident(x);
        let out = f(&x.data)?;
        let (m, n) = (x.data.dims()[0], x.data.dims()[1]);
        self.charge(reduce::reduce_desc(m, n).labeled(label), x.scale);
        Ok(self.adopt(out, x.scale))
    }

    /// Gathers `indices` rows from a table (embedding lookup / neighbor
    /// feature fetch). `scale` multiplies the priced row count for
    /// representative batches.
    ///
    /// # Errors
    ///
    /// Returns index errors from the functional gather.
    pub fn gather_rows(
        &mut self,
        label: &'static str,
        table: &impl Operand,
        indices: &[usize],
        scale: f64,
    ) -> Result<DeviceTensor> {
        self.ensure_resident(table);
        let out = table.tensor().gather_rows(indices)?;
        let width = table.tensor().dims()[1];
        self.charge(
            manip::gather_rows_desc(indices.len(), width).labeled(label),
            scale,
        );
        Ok(self.adopt(out, scale))
    }

    /// Scatters `rows` back into a copy of `base` at `indices`
    /// (embedding/memory update). Returns the new table values, which the
    /// caller stores back into its weight slot.
    ///
    /// # Errors
    ///
    /// Returns shape/index errors from the functional scatter.
    pub fn scatter_rows(
        &mut self,
        label: &'static str,
        base: &impl Operand,
        indices: &[usize],
        rows: &DeviceTensor,
    ) -> Result<Tensor> {
        self.ensure_resident(rows);
        let out = base.tensor().scatter_rows(indices, rows.tensor())?;
        let width = base.tensor().dims()[1];
        self.charge(
            manip::scatter_rows_desc(indices.len(), width).labeled(label),
            rows.scale,
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCategory;
    use crate::kernel::KernelKind;
    use crate::spec::PlatformSpec;

    fn gpu() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::Gpu)
    }

    fn cpu() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    #[test]
    fn matmul_computes_and_charges_one_gemm() {
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let a = DeviceTensor::host(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = Tensor::eye(2);
        let y = dx.matmul("mm", &a, &b).unwrap();
        assert_eq!(y.data(), a.data());
        let events = ex.timeline().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "mm");
        assert_eq!(events[0].category, EventCategory::Kernel(KernelKind::Gemm));
        assert_eq!(events[0].flops, cost::matmul_flops(2, 2, 2));
    }

    #[test]
    fn dispatcher_price_matches_manual_launch() {
        // The same schedule dispatched vs hand-launched lands on the same
        // clock: the dispatcher cannot drift from the legacy pricing.
        let mut manual = gpu();
        manual.launch(KernelDesc::gemm("mm", 8, 16, 4));
        manual.launch(KernelDesc::elementwise("bias", 8 * 4, 1, 2));

        let mut ex = gpu();
        {
            let mut dx = Dispatcher::new(&mut ex);
            let x = dx.adopt(Tensor::ones(&[8, 16]), 1.0);
            let w = Tensor::ones(&[4, 16]);
            let bias = Tensor::zeros(&[4]);
            let y = dx.matmul_nt("mm", &x, &w).unwrap();
            dx.add_bias("bias", &y, &bias).unwrap();
        }
        assert_eq!(ex.now(), manual.now());
    }

    #[test]
    fn host_tensor_pays_h2d_once_then_stays_resident() {
        let mut ex = gpu();
        let mut dx = Dispatcher::new(&mut ex);
        let x = DeviceTensor::host(Tensor::ones(&[4, 4]));
        let w = Tensor::eye(4);
        dx.matmul("mm1", &x, &w).unwrap();
        dx.matmul("mm2", &x, &w).unwrap();
        assert_eq!(x.place(), Place::Gpu);
        let transfers: Vec<_> = ex
            .timeline()
            .events()
            .iter()
            .filter(|e| matches!(e.category, EventCategory::Transfer(_)))
            .collect();
        assert_eq!(transfers.len(), 1, "one crossing, one copy");
        assert_eq!(transfers[0].label, "memcpy_h2d");
        assert_eq!(transfers[0].bytes, 4 * 4 * 4);
    }

    #[test]
    fn cpu_only_mode_never_transfers() {
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let x = DeviceTensor::host(Tensor::ones(&[8, 8]));
        let y = dx.matmul("mm", &x, &Tensor::eye(8)).unwrap();
        dx.download(&y);
        assert_eq!(ex.timeline().busy_time(Place::Pcie), DurationNs::ZERO);
        assert!(ex
            .timeline()
            .events()
            .iter()
            .all(|e| !matches!(e.category, EventCategory::Transfer(_))));
    }

    #[test]
    fn download_charges_d2h_and_flips_residence() {
        let mut ex = gpu();
        let mut dx = Dispatcher::new(&mut ex);
        let x = DeviceTensor::host(Tensor::ones(&[2, 2]));
        let y = dx.relu("r", &x);
        assert_eq!(y.place(), Place::Gpu);
        dx.download(&y);
        assert_eq!(y.place(), Place::Cpu);
        {
            let last = dx.executor().timeline().events().last().unwrap();
            assert_eq!(last.label, "memcpy_d2h");
            assert_eq!(last.bytes, y.logical_bytes());
        }
        // Downloading again is free: residence already matches.
        let before = dx.executor().timeline().len();
        dx.download(&y);
        assert_eq!(ex.timeline().len(), before);
    }

    #[test]
    fn scale_multiplies_priced_work_and_transfer_bytes() {
        let mut ex = gpu();
        let mut dx = Dispatcher::new(&mut ex);
        let rep = DeviceTensor::host_scaled(Tensor::ones(&[4, 8]), 16.0);
        dx.matmul("mm", &rep, &Tensor::eye(8)).unwrap();
        let h2d = ex
            .timeline()
            .events()
            .iter()
            .find(|e| e.label == "memcpy_h2d")
            .unwrap();
        assert_eq!(h2d.bytes, 16 * 4 * 8 * 4, "16× the physical bytes");
        let mm = ex
            .timeline()
            .events()
            .iter()
            .find(|e| e.label == "mm")
            .unwrap();
        assert_eq!(mm.flops, 16 * cost::matmul_flops(4, 8, 8));
    }

    #[test]
    fn scaled_rep_batch_prices_like_full_batch() {
        // A 128-row batch computed on 8 representative rows at scale 16
        // costs exactly what the materialized 128-row batch costs.
        let mut full = gpu();
        {
            let mut dx = Dispatcher::new(&mut full);
            let x = dx.adopt(Tensor::ones(&[128, 8]), 1.0);
            dx.matmul_nt("mm", &x, &Tensor::ones(&[8, 8])).unwrap();
        }
        let mut rep = gpu();
        {
            let mut dx = Dispatcher::new(&mut rep);
            let x = dx.adopt(Tensor::ones(&[8, 8]), 16.0);
            dx.matmul_nt("mm", &x, &Tensor::ones(&[8, 8])).unwrap();
        }
        assert_eq!(full.now(), rep.now());
    }

    #[test]
    fn weights_never_transfer() {
        let mut ex = gpu();
        let mut dx = Dispatcher::new(&mut ex);
        let x = dx.adopt(Tensor::ones(&[4, 4]), 1.0);
        let w = Tensor::eye(4);
        dx.matmul("mm", &x, &w).unwrap();
        assert!(ex
            .timeline()
            .events()
            .iter()
            .all(|e| !matches!(e.category, EventCategory::Transfer(_))));
    }

    #[test]
    fn gather_and_scatter_price_irregular_kernels() {
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let table = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]).unwrap();
        let rows = dx.gather_rows("lookup", &table, &[1, 3], 1.0).unwrap();
        assert_eq!(rows.data().dims(), &[2, 3]);
        let updated = dx.scatter_rows("update", &table, &[0, 2], &rows).unwrap();
        assert_eq!(updated.row(0).unwrap(), table.row(1).unwrap());
        let kinds: Vec<_> = ex.timeline().events().iter().map(|e| e.category).collect();
        assert_eq!(
            kinds,
            vec![
                EventCategory::Kernel(KernelKind::Gather),
                EventCategory::Kernel(KernelKind::Gather),
            ]
        );
    }

    #[test]
    fn fused_charges_exactly_the_given_descriptor() {
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let out: Tensor = dx
            .fused(
                OpDescriptor::elementwise("gru_update", 64, 6, 3),
                1.0,
                || Ok(Tensor::zeros(&[64])),
            )
            .unwrap();
        assert_eq!(out.len(), 64);
        let e = ex.timeline().events().last().unwrap();
        assert_eq!(e.label, "gru_update");
        assert_eq!(e.flops, cost::elementwise_flops(64, 6));
    }

    #[test]
    fn scopes_wrap_dispatched_events() {
        let mut ex = gpu();
        {
            let mut dx = Dispatcher::new(&mut ex);
            let x = dx.adopt(Tensor::ones(&[4, 4]), 1.0);
            dx.scope("gnn", |dx| {
                dx.scope("layer0", |dx| dx.matmul("mm", &x, &Tensor::eye(4)))
            })
            .unwrap();
        }
        let e = ex.timeline().events().last().unwrap();
        assert_eq!(e.scope, "gnn/layer0");
        let paths: Vec<&str> = ex.scopes().iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"gnn") && paths.contains(&"gnn/layer0"));
    }

    #[test]
    fn softmax_and_reduce_price_reduce_kernels() {
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let x = dx.adopt(Tensor::ones(&[3, 5]), 1.0);
        let p = dx.softmax_rows("sm", &x).unwrap();
        assert!((p.data().at(&[0, 0]).unwrap() - 0.2).abs() < 1e-6);
        dx.reduce_rows("agg", &x, Tensor::mean_rows).unwrap();
        assert!(ex
            .timeline()
            .events()
            .iter()
            .all(|e| e.category == EventCategory::Kernel(KernelKind::Reduce)));
    }

    #[test]
    fn coalescing_merges_transfers_and_conserves_bytes() {
        // Four host tensors consumed by kernels: uncoalesced that is four
        // H2D events; coalesced it is one event with the summed bytes.
        let run = |coalesce: bool| {
            let mut ex = gpu();
            {
                let mut dx = Dispatcher::with_coalescing(&mut ex, coalesce);
                let w = Tensor::eye(8);
                for _ in 0..4 {
                    let x = DeviceTensor::host(Tensor::ones(&[8, 8]));
                    dx.matmul("mm", &x, &w).unwrap();
                }
                dx.flush_transfers();
            }
            ex
        };
        let plain = run(false);
        let merged = run(true);
        assert_eq!(plain.timeline().transfer_count(None), 4);
        assert_eq!(merged.timeline().transfer_count(None), 1);
        assert_eq!(
            plain.timeline().transfer_bytes(None),
            merged.timeline().transfer_bytes(None),
            "coalescing must conserve total transferred bytes"
        );
        // One latency instead of four: the merged schedule is faster.
        assert!(merged.now() < plain.now());
    }

    #[test]
    fn flush_prices_each_direction_separately() {
        let mut ex = gpu();
        let mut dx = Dispatcher::with_coalescing(&mut ex, true);
        let x = DeviceTensor::host(Tensor::ones(&[4, 4]));
        let y = dx.relu("r", &x);
        dx.download(&y);
        assert_eq!(dx.pending_transfer_bytes(TransferDir::H2D), 64);
        assert_eq!(dx.pending_transfer_bytes(TransferDir::D2H), 64);
        let d = dx.flush_transfers();
        assert!(d.as_nanos() > 0);
        assert_eq!(dx.pending_transfer_bytes(TransferDir::H2D), 0);
        assert_eq!(dx.pending_transfer_bytes(TransferDir::D2H), 0);
        // A second flush with nothing staged is free.
        assert_eq!(dx.flush_transfers(), DurationNs::ZERO);
        assert_eq!(ex.timeline().transfer_count(Some(TransferDir::H2D)), 1);
        assert_eq!(ex.timeline().transfer_count(Some(TransferDir::D2H)), 1);
    }

    #[test]
    fn pageable_tax_is_paid_once_per_coalesced_flush() {
        // Property: under `TransferMode::Pageable` the fixed per-transfer
        // tax (PCIe latency + host metadata) is charged once per *flushed*
        // merged transfer, never once per staged piece — so coalescing's
        // advantage over eager pageable copies is exactly the (n-1) taxes
        // it avoids, across any piece count and size mix. Swept over a
        // deterministic pseudo-random workload in lieu of a quickcheck
        // dependency.
        use crate::spec::TransferMode;
        let spec = PlatformSpec::default().pcie;
        let tax = DurationNs::from_nanos(spec.latency_ns + spec.host_meta_ns);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next_bytes = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) % 8_192 + 1
        };
        let run = |coalesce: bool, pieces: &[u64]| -> (DurationNs, usize) {
            let mut ex = gpu();
            ex.set_transfer_mode(TransferMode::Pageable);
            ex.ensure_context();
            let t0 = ex.now();
            let mut dx = Dispatcher::with_coalescing(&mut ex, coalesce);
            for &b in pieces {
                dx.transfer(TransferDir::H2D, b);
            }
            dx.flush_transfers();
            let n = ex.timeline().transfer_count(Some(TransferDir::H2D));
            (ex.now() - t0, n)
        };
        for n_pieces in [1usize, 2, 3, 5, 8, 13, 16] {
            let pieces: Vec<u64> = (0..n_pieces).map(|_| next_bytes()).collect();
            let total: u64 = pieces.iter().sum();
            let (merged_time, merged_n) = run(true, &pieces);
            let (eager_time, eager_n) = run(false, &pieces);
            assert_eq!(merged_n, 1, "coalescing must flush one merged copy");
            assert_eq!(eager_n, n_pieces, "eager mode prices every piece");
            // The merged flush is priced exactly like a single pageable
            // transfer of the summed payload: one tax, summed bandwidth.
            let expected = tax
                + DurationNs::from_secs_f64(
                    total as f64 / spec.staging_bandwidth + total as f64 / spec.pageable_bandwidth,
                );
            assert_eq!(merged_time, expected, "n_pieces={n_pieces}");
            // Eager pays the same bandwidth terms but one tax per piece;
            // the gap is (n-1) taxes up to per-piece rounding (< 1 ns each).
            let gap = eager_time.saturating_sub(merged_time).as_nanos();
            let want = tax.as_nanos() * (n_pieces as u64 - 1);
            assert!(
                gap.abs_diff(want) <= n_pieces as u64,
                "n_pieces={n_pieces}: gap {gap} vs (n-1) taxes {want}"
            );
        }
    }

    #[test]
    fn coalescing_is_inert_in_cpu_only_mode() {
        let mut ex = cpu();
        let mut dx = Dispatcher::with_coalescing(&mut ex, true);
        let x = DeviceTensor::host(Tensor::ones(&[8, 8]));
        dx.matmul("mm", &x, &Tensor::eye(8)).unwrap();
        assert_eq!(dx.pending_transfer_bytes(TransferDir::H2D), 0);
        assert_eq!(dx.flush_transfers(), DurationNs::ZERO);
        assert_eq!(ex.timeline().transfer_count(None), 0);
    }

    #[test]
    fn fetch_rows_prices_misses_once_and_skips_hits() {
        let mut ex = gpu();
        ex.ensure_context();
        ex.enable_feature_cache(16);
        let mut dx = Dispatcher::new(&mut ex);
        let keys: Vec<u64> = (0..8).collect();
        let cold = dx.fetch_rows(TensorClass::NodeFeature, &keys, 128, 1.0);
        assert_eq!((cold.hit_rows, cold.miss_rows), (0, 8));
        assert_eq!(cold.miss_bytes, 8 * 128);
        let warm = dx.fetch_rows(TensorClass::NodeFeature, &keys, 128, 1.0);
        assert_eq!((warm.hit_rows, warm.miss_rows), (8, 0));
        assert_eq!(warm.hit_bytes, 8 * 128);
        assert!((warm.hit_rate() - 1.0).abs() < 1e-12);
        // One priced transfer (the cold fetch); the warm fetch priced none.
        assert_eq!(ex.timeline().transfer_count(Some(TransferDir::H2D)), 1);
        assert_eq!(
            ex.timeline().transfer_bytes(Some(TransferDir::H2D)),
            8 * 128
        );
    }

    #[test]
    fn fetch_rows_scale_multiplies_priced_bytes() {
        let mut ex = gpu();
        ex.ensure_context();
        ex.enable_feature_cache(4);
        let mut dx = Dispatcher::new(&mut ex);
        let f = dx.fetch_rows(TensorClass::EdgeFeature, &[1, 2], 100, 16.0);
        assert_eq!(f.miss_bytes, 2 * 1600);
        assert_eq!(ex.timeline().transfer_bytes(Some(TransferDir::H2D)), 3200);
    }

    #[test]
    fn fetch_rows_composes_with_coalescing() {
        let mut ex = gpu();
        ex.ensure_context();
        ex.enable_feature_cache(16);
        let mut dx = Dispatcher::with_coalescing(&mut ex, true);
        dx.fetch_rows(TensorClass::NodeFeature, &[1, 2, 3], 64, 1.0);
        assert_eq!(dx.pending_transfer_bytes(TransferDir::H2D), 3 * 64);
        dx.flush_transfers();
        assert_eq!(ex.timeline().transfer_count(Some(TransferDir::H2D)), 1);
    }

    #[test]
    fn fetch_rows_without_cache_misses_everything() {
        let mut ex = gpu();
        ex.ensure_context();
        let mut dx = Dispatcher::new(&mut ex);
        let a = dx.fetch_rows(TensorClass::NodeFeature, &[7], 64, 1.0);
        let b = dx.fetch_rows(TensorClass::NodeFeature, &[7], 64, 1.0);
        assert_eq!(a.miss_rows, 1);
        assert_eq!(b.miss_rows, 1, "no cache: repeats still pay");
        assert_eq!(ex.timeline().transfer_count(Some(TransferDir::H2D)), 2);
    }

    #[test]
    fn fetch_rows_is_inert_in_cpu_only_mode() {
        let mut ex = cpu();
        ex.enable_feature_cache(16);
        let mut dx = Dispatcher::new(&mut ex);
        let f = dx.fetch_rows(TensorClass::NodeFeature, &[1, 2], 64, 1.0);
        assert_eq!(f, CacheFetch::default());
        assert_eq!(ex.timeline().transfer_count(None), 0);
        assert_eq!(ex.cache_stats().lookups(), 0);
    }

    #[test]
    fn fetch_rows_hits_are_traced() {
        use crate::trace::TraceRecord;
        let mut ex = gpu();
        ex.ensure_context();
        ex.enable_tracing();
        ex.enable_feature_cache(8);
        let mut dx = Dispatcher::new(&mut ex);
        dx.fetch_rows(TensorClass::NodeMemory, &[1, 2], 32, 1.0);
        dx.fetch_rows(TensorClass::NodeMemory, &[1, 2, 3], 32, 1.0);
        let records = ex.trace().unwrap().records();
        // One aggregated record for the two warm rows, not one per row.
        let hits: Vec<_> = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::CacheHit { .. }))
            .collect();
        assert_eq!(hits.len(), 1);
        assert!(matches!(
            hits[0],
            TraceRecord::CacheHit {
                class: TensorClass::NodeMemory,
                rows: 2,
                bytes: 64,
                ..
            }
        ));
    }

    #[test]
    fn tracing_attributes_crossings_and_kernel_args_to_tensors() {
        use crate::trace::{AccessKind, TraceRecord};
        let mut ex = gpu();
        ex.enable_tracing();
        let mut dx = Dispatcher::new(&mut ex);
        let x = DeviceTensor::host(Tensor::ones(&[4, 4]));
        let id = x.trace_id();
        let y = dx.matmul("mm", &x, &Tensor::eye(4)).unwrap();
        dx.download(&y);
        let records = ex.trace().unwrap().records().to_vec();
        // The upload crossing carries the operand's buffer identity…
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::Crossing {
                tensor: Some(t),
                dir: TransferDir::H2D,
                staged: false,
                ..
            } if *t == id
        )));
        // …the kernel argument access follows it…
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::Access {
                tensor: t,
                kind: AccessKind::Arg,
                place: Place::Gpu,
                ..
            } if *t == id
        )));
        // …and the result's read-back is a Download access plus a D2H
        // crossing attributed to the result tensor.
        let yid = y.trace_id();
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::Access {
                tensor: t,
                kind: AccessKind::Download,
                ..
            } if *t == yid
        )));
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::Crossing {
                tensor: Some(t),
                dir: TransferDir::D2H,
                ..
            } if *t == yid
        )));
    }

    #[test]
    fn tracing_marks_staged_crossings_and_flushes() {
        use crate::trace::TraceRecord;
        let mut ex = gpu();
        ex.enable_tracing();
        let mut dx = Dispatcher::with_coalescing(&mut ex, true);
        for _ in 0..3 {
            let x = DeviceTensor::host(Tensor::ones(&[4, 4]));
            dx.matmul("mm", &x, &Tensor::eye(4)).unwrap();
        }
        dx.flush_transfers();
        let records = ex.trace().unwrap().records();
        let staged: u64 = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Crossing {
                    bytes,
                    staged: true,
                    ..
                } => Some(*bytes),
                _ => None,
            })
            .sum();
        let flushed: u64 = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Flush { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(staged, 3 * 64);
        assert_eq!(flushed, staged, "flush must conserve staged bytes");
    }

    #[test]
    fn release_tensor_frees_memory_and_logs() {
        use crate::trace::TraceRecord;
        let mut ex = gpu();
        ex.enable_tracing();
        let mut dx = Dispatcher::new(&mut ex);
        let x = dx.adopt(Tensor::ones(&[8, 8]), 1.0);
        let id = x.trace_id();
        dx.executor().gpu_memory();
        dx.release_tensor(&x);
        assert!(ex.trace().unwrap().records().iter().any(|r| matches!(
            r,
            TraceRecord::Release { tensor, .. } if *tensor == id
        )));
    }

    #[test]
    fn dispatcher_lane_placement_matches_executor() {
        let mut ex = gpu();
        ex.ensure_context();
        ex.fork_streams();
        {
            let mut dx = Dispatcher::new(&mut ex);
            let x = dx.adopt(Tensor::ones(&[8, 8]), 1.0);
            dx.on_stream(StreamId::Compute, |dx| {
                dx.matmul("mm", &x, &Tensor::eye(8)).unwrap();
            });
        }
        ex.join_streams();
        let e = ex
            .timeline()
            .events()
            .iter()
            .find(|e| e.label == "mm")
            .unwrap();
        assert_eq!(e.stream, Some(StreamId::Compute));
    }

    #[test]
    fn peer_transfer_logs_a_crossing_and_its_pricing_twin() {
        use crate::trace::TraceRecord;
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.enable_tracing();
        ex.ensure_context();
        let mut dx = Dispatcher::new(&mut ex);
        let d = dx.on_device(1, |dx| dx.peer_transfer(0, 1 << 20));
        assert!(d > DurationNs::ZERO);
        let trace = ex.trace().unwrap();
        assert!(trace.records().iter().any(|r| matches!(
            r,
            TraceRecord::PeerCrossing { src: 0, dst: 1, bytes, .. } if *bytes == 1 << 20
        )));
        assert!(trace.records().iter().any(|r| matches!(
            r,
            TraceRecord::PeerPriced {
                src: 0,
                dst: 1,
                bytes,
                via_host: false,
                ..
            } if *bytes == 1 << 20
        )));
    }

    #[test]
    fn same_device_peer_fetches_log_nothing() {
        use crate::trace::TraceRecord;
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.enable_tracing();
        ex.ensure_context();
        let mut dx = Dispatcher::new(&mut ex);
        assert_eq!(dx.peer_transfer(0, 1 << 20), DurationNs::ZERO);
        assert!(!ex.trace().unwrap().records().iter().any(|r| matches!(
            r,
            TraceRecord::PeerCrossing { .. } | TraceRecord::PeerPriced { .. }
        )));
    }

    #[test]
    fn on_device_places_dispatched_work_on_that_device() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.ensure_context();
        let mut dx = Dispatcher::new(&mut ex);
        let x = dx.adopt(Tensor::ones(&[8, 8]), 1.0);
        dx.on_device(1, |dx| {
            dx.matmul("mm_dev1", &x, &Tensor::eye(8)).unwrap();
        });
        assert_eq!(dx.current_device(), 0);
        let e = ex
            .timeline()
            .events()
            .iter()
            .find(|e| e.label == "mm_dev1")
            .unwrap();
        assert_eq!(e.device, 1);
    }

    #[test]
    fn on_device_flushes_staged_bytes_before_switching() {
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.ensure_context();
        let mut dx = Dispatcher::with_coalescing(&mut ex, true);
        let x = DeviceTensor::host(Tensor::ones(&[8, 8]));
        dx.on_device(1, |dx| {
            dx.matmul("mm", &x, &Tensor::eye(8)).unwrap();
        });
        // The staged H2D crossing was flushed inside the device-1 scope.
        let t = ex
            .timeline()
            .events()
            .iter()
            .find(|e| matches!(e.category, EventCategory::Transfer(_)))
            .expect("staged copy must be priced");
        assert_eq!(t.device, 1);
    }

    #[test]
    fn activation_and_binary_price_elementwise() {
        let mut ex = cpu();
        let mut dx = Dispatcher::new(&mut ex);
        let x = dx.adopt(Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap(), 1.0);
        let s = dx.activation("sig", &x, Tensor::sigmoid);
        assert!(s.data().as_slice()[0] < 0.5 && s.data().as_slice()[1] > 0.5);
        let sum = dx.binary("add", &x, s.data(), Tensor::add).unwrap();
        assert_eq!(sum.data().len(), 2);
        assert!(ex
            .timeline()
            .events()
            .iter()
            .all(|e| e.category == EventCategory::Kernel(KernelKind::Elementwise)));
    }
}
