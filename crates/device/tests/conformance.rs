//! Priced = computed: for every kernel family, the flops/bytes the
//! dispatcher charges onto the timeline must equal the `dgnn-tensor`
//! cost estimators evaluated at the operands' actual shapes. This is
//! the invariant the unified dispatch layer exists to enforce — if it
//! drifts, every bottleneck share in the paper-claims suite is suspect.

use dgnn_device::{
    DeviceTensor, Dispatcher, EventCategory, ExecMode, Executor, KernelKind, PlatformSpec,
    TransferDir,
};
use dgnn_tensor::cost::{
    self, elementwise_bytes, elementwise_flops, matmul_bytes, matmul_flops, softmax_flops,
    OpDescriptor,
};
use dgnn_tensor::{Tensor, TensorRng};

fn gpu() -> Executor {
    Executor::new(PlatformSpec::default(), ExecMode::Gpu)
}

fn rand(dims: &[usize], seed: u64) -> Tensor {
    TensorRng::seed(seed).init(dims, dgnn_tensor::Initializer::Uniform(1.0))
}

/// The single kernel event of kind `kind` on the timeline.
fn only_kernel(ex: &Executor, kind: KernelKind) -> (u64, u64) {
    let events: Vec<_> = ex
        .timeline()
        .events()
        .iter()
        .filter(|e| e.category == EventCategory::Kernel(kind))
        .collect();
    assert_eq!(events.len(), 1, "expected exactly one {kind:?} kernel");
    (events[0].flops, events[0].bytes)
}

#[test]
fn gemm_charge_matches_cost_estimator() {
    let (m, k, n) = (7, 13, 5);
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    let a = dx.adopt(rand(&[m, k], 1), 1.0);
    let b = dx.adopt(rand(&[k, n], 2), 1.0);
    dx.matmul("conf_gemm", &a, &b).unwrap();
    let (flops, bytes) = only_kernel(&ex, KernelKind::Gemm);
    assert_eq!(flops, matmul_flops(m, k, n));
    assert_eq!(bytes, matmul_bytes(m, k, n));
}

#[test]
fn elementwise_charge_matches_cost_estimator() {
    let (m, n) = (9, 11);
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    let x = dx.adopt(rand(&[m, n], 3), 1.0);
    dx.relu("conf_relu", &x);
    let (flops, bytes) = only_kernel(&ex, KernelKind::Elementwise);
    assert_eq!(flops, elementwise_flops(m * n, 1));
    assert_eq!(bytes, elementwise_bytes(m * n, 1));
}

#[test]
fn reduce_charge_matches_cost_estimator() {
    let (m, n) = (6, 17);
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    let x = dx.adopt(rand(&[m, n], 4), 1.0);
    dx.softmax_rows("conf_softmax", &x).unwrap();
    let (flops, bytes) = only_kernel(&ex, KernelKind::Reduce);
    assert_eq!(flops, softmax_flops(m, n));
    assert_eq!(bytes, 2 * cost::f32_bytes(m * n));
}

#[test]
fn gather_charge_matches_cost_estimator() {
    let (rows, width) = (4, 19);
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    let table = dx.adopt(rand(&[64, width], 5), 1.0);
    dx.gather_rows("conf_gather", &table, &[0, 7, 9, 13], 1.0)
        .unwrap();
    let (flops, bytes) = only_kernel(&ex, KernelKind::Gather);
    assert_eq!(flops, 0);
    assert_eq!(bytes, 2 * cost::f32_bytes(rows * width));
}

#[test]
fn sort_charge_matches_cost_estimator() {
    let len = 1000usize;
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    dx.charge(OpDescriptor::sort("conf_sort", len), 1.0);
    let (flops, bytes) = only_kernel(&ex, KernelKind::Sort);
    let log = 64 - (len as u64).leading_zeros() as u64;
    assert_eq!(flops, len as u64 * log);
    assert_eq!(bytes, 2 * cost::f32_bytes(len) * log);
}

#[test]
#[expect(
    clippy::cast_possible_truncation,
    reason = "rounded scaled charges fit u64"
)]
fn representative_scale_multiplies_the_charge_exactly() {
    let (m, k, n) = (8, 16, 8);
    let scale = 37.0;
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    let a = dx.adopt(rand(&[m, k], 6), scale);
    let b = dx.adopt(rand(&[k, n], 7), scale);
    dx.matmul("conf_scaled_gemm", &a, &b).unwrap();
    let (flops, bytes) = only_kernel(&ex, KernelKind::Gemm);
    assert_eq!(flops, (matmul_flops(m, k, n) as f64 * scale).round() as u64);
    assert_eq!(bytes, (matmul_bytes(m, k, n) as f64 * scale).round() as u64);
}

#[test]
fn residence_crossing_charges_logical_bytes() {
    let t = DeviceTensor::host_scaled(rand(&[3, 32], 8), 100.0);
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    dx.ensure_resident(&t);
    assert_eq!(
        ex.timeline().transfer_bytes(Some(TransferDir::H2D)),
        t.logical_bytes()
    );
}

#[test]
fn cpu_mode_never_transfers() {
    let t = DeviceTensor::host_scaled(rand(&[3, 32], 9), 100.0);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
    let mut dx = Dispatcher::new(&mut ex);
    dx.ensure_resident(&t);
    let out = dx.relu("conf_cpu_relu", &t);
    dx.download(&out);
    assert_eq!(ex.timeline().transfer_bytes(None), 0);
}

#[test]
fn every_kernel_kind_is_covered_by_a_dispatcher_path() {
    // One run that exercises all five families through typed ops and
    // checks each recorded event against a descriptor rebuilt from the
    // same shapes — the loop form of the per-family tests above.
    let mut ex = gpu();
    let mut dx = Dispatcher::new(&mut ex);
    let a = dx.adopt(rand(&[4, 8], 10), 1.0);
    let b = dx.adopt(rand(&[8, 4], 11), 1.0);
    let prod = dx.matmul("cover_gemm", &a, &b).unwrap();
    let act = dx.relu("cover_relu", &prod);
    dx.softmax_rows("cover_softmax", &act).unwrap();
    dx.gather_rows("cover_gather", &act, &[0, 2], 1.0).unwrap();
    dx.charge(OpDescriptor::sort("cover_sort", 64), 1.0);

    let expect = [
        (KernelKind::Gemm, OpDescriptor::gemm("", 4, 8, 4)),
        (
            KernelKind::Elementwise,
            OpDescriptor::elementwise("", 16, 1, 1),
        ),
        (KernelKind::Reduce, OpDescriptor::reduce("", 4, 4)),
        (KernelKind::Gather, OpDescriptor::gather("", 2, 4)),
        (KernelKind::Sort, OpDescriptor::sort("", 64)),
    ];
    for (kind, desc) in expect {
        let (flops, bytes) = only_kernel(&ex, kind);
        assert_eq!(flops, desc.flops, "{kind:?} flops");
        assert_eq!(bytes, desc.bytes, "{kind:?} bytes");
    }
}
