//! Grandfathered-finding baselines.
//!
//! A baseline is a plain-text file of [`Finding::baseline_key`] lines
//! (`<RULE-ID>\t<file>\t<excerpt>`). Findings whose key appears in the
//! baseline are suppressed (counted, not listed), which lets the CI
//! gate turn red only for *new* violations while a grandfathered debt
//! is paid down. The acceptance bar for this workspace is an **empty
//! baseline**: the checked-in tree lints clean with no suppressions.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::report::Finding;

/// A set of grandfathered finding keys.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// The empty baseline (nothing suppressed).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Loads a baseline file: one key per line, `#` comments and blank
    /// lines ignored.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = fs::read_to_string(path)?;
        let keys = text
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Ok(Baseline { keys })
    }

    /// Number of grandfathered keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the baseline suppresses nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether a finding is grandfathered.
    pub fn covers(&self, finding: &Finding) -> bool {
        self.keys.contains(&finding.baseline_key())
    }

    /// Serializes findings as a baseline file body (sorted, stable).
    pub fn render(findings: &[Finding]) -> String {
        let mut keys: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
        keys.sort();
        keys.dedup();
        let mut out = String::from(
            "# dgnn-lint baseline: grandfathered findings (one key per line).\n\
             # Regenerate with `dgnn-lint --write-baseline <path>`.\n",
        );
        for k in keys {
            out.push_str(&k);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::LintRule;

    fn finding(file: &str) -> Finding {
        Finding {
            rule: LintRule::HashIteration,
            file: file.into(),
            line: 1,
            function: None,
            excerpt: "m.keys()".into(),
            message: "test".into(),
            suggestion: LintRule::HashIteration.suggestion(),
        }
    }

    #[test]
    fn roundtrip_covers_rendered_findings() {
        let f1 = finding("a.rs");
        let f2 = finding("b.rs");
        let body = Baseline::render(&[f1.clone(), f2.clone(), f1.clone()]);
        let dir = std::env::temp_dir().join("dgnn-lint-baseline-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.txt");
        fs::write(&path, &body).unwrap();
        let b = Baseline::load(&path).unwrap();
        assert_eq!(b.len(), 2, "dedup across identical findings");
        assert!(b.covers(&f1));
        assert!(b.covers(&f2));
        assert!(!b.covers(&finding("c.rs")));
        assert!(Baseline::empty().is_empty());
        fs::remove_file(&path).ok();
    }
}
