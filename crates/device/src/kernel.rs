//! Kernel and host-work descriptors: the unit of pricing in the simulator.

use dgnn_tensor::cost::{self, OpDescriptor, OpKind};

/// The kernel families the profiled DGNNs exercise.
///
/// These mirror the categories an Nsight Systems trace groups CUDA kernels
/// into for these models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense matrix multiplication (cuBLAS GEMM).
    Gemm,
    /// Element-wise arithmetic / activation.
    Elementwise,
    /// Reduction (sum/max) or softmax.
    Reduce,
    /// Gather / scatter / embedding lookup — irregular access.
    Gather,
    /// Sort or bisection-heavy index manipulation — irregular access.
    Sort,
}

impl From<OpKind> for KernelKind {
    fn from(kind: OpKind) -> Self {
        match kind {
            OpKind::Gemm => KernelKind::Gemm,
            OpKind::Elementwise => KernelKind::Elementwise,
            OpKind::Reduce => KernelKind::Reduce,
            OpKind::Gather => KernelKind::Gather,
            OpKind::Sort => KernelKind::Sort,
        }
    }
}

impl KernelKind {
    /// Whether this family pays the irregular-access bandwidth penalty.
    pub fn is_irregular(self) -> bool {
        matches!(self, KernelKind::Gather | KernelKind::Sort)
    }

    /// Short display name used in breakdown tables.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Gemm => "gemm",
            KernelKind::Elementwise => "elementwise",
            KernelKind::Reduce => "reduce",
            KernelKind::Gather => "gather",
            KernelKind::Sort => "sort",
        }
    }
}

/// Work description of one device kernel.
///
/// Constructed via the family helpers ([`KernelDesc::gemm`] etc.) so FLOP
/// and byte estimates stay consistent across the model zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Human-readable label (appears on the timeline).
    pub label: &'static str,
    /// Kernel family.
    pub kind: KernelKind,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Bytes moved to/from device memory.
    pub bytes: u64,
    /// Data-parallel lanes of work (drives occupancy).
    pub parallelism: u64,
}

impl KernelDesc {
    /// Builds a kernel from a device-neutral [`OpDescriptor`], preserving
    /// label, family and all work fields. This is the dispatcher's bridge:
    /// the same descriptor that names the functional op prices the kernel.
    pub fn from_op(op: &OpDescriptor) -> Self {
        KernelDesc {
            label: op.label,
            kind: op.kind.into(),
            flops: op.flops,
            bytes: op.bytes,
            parallelism: op.parallelism,
        }
    }

    /// A dense `[m, k] × [k, n]` GEMM.
    pub fn gemm(label: &'static str, m: usize, k: usize, n: usize) -> Self {
        KernelDesc {
            label,
            kind: KernelKind::Gemm,
            flops: cost::matmul_flops(m, k, n),
            bytes: cost::matmul_bytes(m, k, n),
            parallelism: cost::matmul_parallelism(m, n),
        }
    }

    /// A batched GEMM of `b` independent `[m, k] × [k, n]` products.
    pub fn batched_gemm(label: &'static str, b: usize, m: usize, k: usize, n: usize) -> Self {
        KernelDesc {
            label,
            kind: KernelKind::Gemm,
            flops: b as u64 * cost::matmul_flops(m, k, n),
            bytes: b as u64 * cost::matmul_bytes(m, k, n),
            parallelism: b as u64 * cost::matmul_parallelism(m, n),
        }
    }

    /// An element-wise kernel over `len` elements with `ops_per_elem`
    /// arithmetic ops and `n_inputs` input operands.
    pub fn elementwise(label: &'static str, len: usize, ops_per_elem: u64, n_inputs: u64) -> Self {
        KernelDesc {
            label,
            kind: KernelKind::Elementwise,
            flops: cost::elementwise_flops(len, ops_per_elem),
            bytes: cost::elementwise_bytes(len, n_inputs),
            parallelism: len as u64,
        }
    }

    /// A reduction/softmax kernel over an `[m, n]` matrix.
    pub fn reduce(label: &'static str, m: usize, n: usize) -> Self {
        KernelDesc {
            label,
            kind: KernelKind::Reduce,
            flops: cost::softmax_flops(m, n),
            bytes: 2 * cost::f32_bytes(m * n),
            parallelism: m as u64,
        }
    }

    /// A gather/scatter of `rows` rows of `width` f32 each.
    pub fn gather(label: &'static str, rows: usize, width: usize) -> Self {
        KernelDesc {
            label,
            kind: KernelKind::Gather,
            flops: 0,
            bytes: 2 * cost::f32_bytes(rows * width),
            parallelism: rows as u64,
        }
    }

    /// A sort over `len` keys (comparison count `len·log2(len)`).
    pub fn sort(label: &'static str, len: usize) -> Self {
        let l = len.max(2) as u64;
        let log = 64 - l.leading_zeros() as u64;
        KernelDesc {
            label,
            kind: KernelKind::Sort,
            flops: l * log,
            bytes: 2 * cost::f32_bytes(len) * log,
            parallelism: len as u64 / 2,
        }
    }
}

/// Host-side (CPU) work description: graph preprocessing, sampling,
/// snapshot assembly. Always executes on the simulated CPU regardless of
/// execution mode — exactly as in the profiled frameworks.
#[derive(Debug, Clone, PartialEq)]
pub struct HostWork {
    /// Human-readable label.
    pub label: &'static str,
    /// Arithmetic/comparison operations performed.
    pub ops: u64,
    /// Bytes touched sequentially.
    pub seq_bytes: u64,
    /// Bytes touched with irregular (random) access — priced against
    /// `mem_bw × irregular_efficiency`.
    pub irregular_bytes: u64,
    /// Independent work items the stage fans out over (e.g. sampling
    /// roots). `1` means a serial loop on one core; larger values let the
    /// executor charge the stage as a critical path over the effective
    /// core count the parallelism can engage (see `Executor::host`).
    pub parallelism: u64,
}

impl HostWork {
    /// Sequential host work (e.g. packing a contiguous batch).
    pub fn sequential(label: &'static str, ops: u64, bytes: u64) -> Self {
        HostWork {
            label,
            ops,
            seq_bytes: bytes,
            irregular_bytes: 0,
            parallelism: 1,
        }
    }

    /// Irregular host work (e.g. temporal neighbor sampling with
    /// bisection over per-node timestamp arrays).
    pub fn irregular(label: &'static str, ops: u64, bytes: u64) -> Self {
        HostWork {
            label,
            ops,
            seq_bytes: 0,
            irregular_bytes: bytes,
            parallelism: 1,
        }
    }

    /// Builder-style parallelism override: declares the stage as `items`
    /// independent work units (clamped to at least 1).
    pub fn with_parallelism(mut self, items: u64) -> Self {
        self.parallelism = items.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_descriptor_matches_cost_helpers() {
        let d = KernelDesc::gemm("t", 4, 5, 6);
        assert_eq!(d.flops, 240);
        assert_eq!(d.parallelism, 24);
        assert_eq!(d.kind, KernelKind::Gemm);
        assert!(!d.kind.is_irregular());
    }

    #[test]
    fn batched_gemm_scales_by_batch() {
        let single = KernelDesc::gemm("t", 4, 5, 6);
        let batched = KernelDesc::batched_gemm("t", 3, 4, 5, 6);
        assert_eq!(batched.flops, 3 * single.flops);
        assert_eq!(batched.parallelism, 3 * single.parallelism);
    }

    #[test]
    fn gather_and_sort_are_irregular() {
        assert!(KernelDesc::gather("g", 10, 8).kind.is_irregular());
        assert!(KernelDesc::sort("s", 100).kind.is_irregular());
    }

    #[test]
    fn sort_cost_grows_superlinearly() {
        let small = KernelDesc::sort("s", 1_000);
        let large = KernelDesc::sort("s", 100_000);
        assert!(large.flops > 100 * small.flops);
    }

    #[test]
    fn from_op_preserves_every_field() {
        let op = OpDescriptor::gemm("proj", 16, 32, 8);
        let k = KernelDesc::from_op(&op);
        assert_eq!(k.label, "proj");
        assert_eq!(k.kind, KernelKind::Gemm);
        assert_eq!(k.flops, op.flops);
        assert_eq!(k.bytes, op.bytes);
        assert_eq!(k.parallelism, op.parallelism);
        // Every family maps to its namesake.
        assert_eq!(KernelKind::from(OpKind::Gather), KernelKind::Gather);
        assert_eq!(KernelKind::from(OpKind::Sort), KernelKind::Sort);
        assert_eq!(KernelKind::from(OpKind::Reduce), KernelKind::Reduce);
        assert_eq!(
            KernelKind::from(OpKind::Elementwise),
            KernelKind::Elementwise
        );
    }

    #[test]
    fn host_work_constructors() {
        let s = HostWork::sequential("pack", 10, 100);
        assert_eq!(s.irregular_bytes, 0);
        assert_eq!(s.parallelism, 1);
        let i = HostWork::irregular("sample", 10, 100);
        assert_eq!(i.seq_bytes, 0);
        assert_eq!(i.irregular_bytes, 100);
        assert_eq!(i.parallelism, 1);
        let p = i.with_parallelism(4096);
        assert_eq!(p.parallelism, 4096);
        assert_eq!(
            HostWork::sequential("z", 1, 1)
                .with_parallelism(0)
                .parallelism,
            1
        );
    }
}
