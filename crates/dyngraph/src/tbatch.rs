//! JODIE's t-batch algorithm.
//!
//! The t-batch construction (Kumar et al., KDD'19) partitions a
//! time-ordered interaction sequence into the smallest number of batches
//! such that no node appears twice within a batch and every interaction's
//! batch comes after the batches of all earlier interactions touching the
//! same nodes. Interactions inside one batch are then free of
//! read-after-write hazards and can execute in parallel on the GPU —
//! the 9.2× training speedup the JODIE paper reports, which Section 3.3
//! of the profiled paper reuses for inference.

use std::collections::HashMap;

use crate::{EventStream, NodeId, TemporalEvent};

/// One t-batch: indices into the originating event slice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TBatch {
    /// Event indices assigned to this batch, in temporal order.
    pub event_indices: Vec<usize>,
}

impl TBatch {
    /// Number of events in the batch (its parallel width).
    pub fn len(&self) -> usize {
        self.event_indices.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.event_indices.is_empty()
    }
}

/// Builds t-batches from event sequences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TBatcher;

impl TBatcher {
    /// Creates a batcher.
    pub fn new() -> Self {
        TBatcher
    }

    /// Assigns each event of `events` (assumed time-ordered) to a batch:
    /// `batch(e) = 1 + max(batch(last event touching e.src),
    /// batch(last event touching e.dst))`. Also returns the work estimate
    /// in hash-map operations for host pricing.
    pub fn build(&self, events: &[TemporalEvent]) -> (Vec<TBatch>, u64) {
        // Point lookups only (get/insert by node id, never iterated), so
        // hasher state cannot leak into batch assignment — LINT1-legal.
        let mut last_batch: HashMap<NodeId, usize> = HashMap::new();
        let mut batches: Vec<TBatch> = Vec::new();
        let mut ops = 0u64;
        for (idx, e) in events.iter().enumerate() {
            let b_src = last_batch.get(&e.src).map_or(0, |&b| b + 1);
            let b_dst = last_batch.get(&e.dst).map_or(0, |&b| b + 1);
            let b = b_src.max(b_dst);
            if b == batches.len() {
                batches.push(TBatch::default());
            }
            batches[b].event_indices.push(idx);
            last_batch.insert(e.src, b);
            last_batch.insert(e.dst, b);
            ops += 4; // two lookups, two inserts
        }
        (batches, ops)
    }

    /// Convenience: batches an entire stream.
    pub fn build_stream(&self, stream: &EventStream) -> (Vec<TBatch>, u64) {
        self.build(stream.events())
    }
}

/// One micro-batch produced by [`WindowBatcher::partition`]: a
/// contiguous run of time-ordered items plus the instant the batch
/// closed (became dispatchable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroBatch {
    /// Index of the first member in the originating arrival slice.
    pub start: usize,
    /// Number of members.
    pub len: usize,
    /// Virtual time (ns) at which assembly closed: the anchor arrival
    /// plus the window, or the arrival of the capacity-filling member,
    /// whichever comes first.
    pub ready_ns: u64,
}

impl MicroBatch {
    /// Member indices as a range into the arrival slice.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// Time-window micro-batching for dynamic admission queues.
///
/// Where [`TBatcher`] groups *interactions* by node-conflict freedom
/// (JODIE's t-batch), `WindowBatcher` groups *requests* by arrival
/// time: a batch is anchored at its first member's arrival and closes
/// either when `window_ns` has elapsed since the anchor or when
/// `max_batch` members have accumulated, whichever comes first. This is
/// the dynamic micro-batching rule inference servers use to trade
/// per-request latency for amortized per-invocation overhead, and the
/// rule `dgnn-serve`'s admission queue applies per model.
///
/// With `window_ns == 0` every item forms its own batch — the
/// degenerate configuration under which a serving layer must be
/// indistinguishable from sequential execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowBatcher {
    /// Maximum time (ns) a batch head may wait for companions.
    pub window_ns: u64,
    /// Maximum members per batch (capacity close).
    pub max_batch: usize,
}

impl WindowBatcher {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch` is zero.
    pub fn new(window_ns: u64, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        WindowBatcher {
            window_ns,
            max_batch,
        }
    }

    /// The instant a batch anchored at `anchor_ns` must close even if
    /// under capacity.
    pub fn deadline(&self, anchor_ns: u64) -> u64 {
        anchor_ns + self.window_ns
    }

    /// Whether a queue of `len` members fills a batch.
    pub fn is_full(&self, len: usize) -> bool {
        len >= self.max_batch
    }

    /// Greedily partitions time-ordered `arrivals_ns` into micro-batches.
    ///
    /// Each batch is anchored at the first unassigned arrival; members
    /// are the subsequent arrivals within the window, capped at
    /// `max_batch`. The partition depends only on the arrival sequence —
    /// it is the closed-form equivalent of feeding the arrivals through
    /// the incremental [`WindowBatcher::deadline`] /
    /// [`WindowBatcher::is_full`] admission rules with no admission
    /// backlog, which `dgnn-serve` cross-validates in its tests.
    ///
    /// # Panics
    ///
    /// Panics when `arrivals_ns` is not sorted ascending.
    pub fn partition(&self, arrivals_ns: &[u64]) -> Vec<MicroBatch> {
        assert!(
            arrivals_ns.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be time-ordered"
        );
        let mut batches = Vec::new();
        let mut start = 0usize;
        while start < arrivals_ns.len() {
            let anchor = arrivals_ns[start];
            let deadline = self.deadline(anchor);
            let mut len = 1usize;
            while start + len < arrivals_ns.len()
                && len < self.max_batch
                && arrivals_ns[start + len] <= deadline
            {
                len += 1;
            }
            let ready_ns = if len == self.max_batch {
                // Capacity close: dispatchable the instant the last
                // member arrived.
                arrivals_ns[start + len - 1]
            } else {
                deadline
            };
            batches.push(MicroBatch {
                start,
                len,
                ready_ns,
            });
            start += len;
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, time: f64) -> TemporalEvent {
        TemporalEvent {
            src,
            dst,
            time,
            feature_idx: 0,
        }
    }

    #[test]
    fn disjoint_events_share_one_batch() {
        let events = vec![ev(0, 1, 0.0), ev(2, 3, 1.0), ev(4, 5, 2.0)];
        let (batches, _) = TBatcher::new().build(&events);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    fn repeated_node_forces_new_batch() {
        let events = vec![ev(0, 1, 0.0), ev(0, 2, 1.0), ev(0, 3, 2.0)];
        let (batches, _) = TBatcher::new().build(&events);
        assert_eq!(batches.len(), 3);
        for b in &batches {
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn no_node_repeats_within_a_batch() {
        let events: Vec<TemporalEvent> = (0..50)
            .map(|i| ev(i % 7, 7 + (i * 3) % 5, i as f64))
            .collect();
        let (batches, _) = TBatcher::new().build(&events);
        for b in &batches {
            let mut seen = std::collections::HashSet::new();
            for &i in &b.event_indices {
                assert!(seen.insert(events[i].src), "src repeated in batch");
                assert!(seen.insert(events[i].dst), "dst repeated in batch");
            }
        }
    }

    #[test]
    fn batches_respect_temporal_dependencies() {
        let events: Vec<TemporalEvent> = (0..30).map(|i| ev(i % 4, 4 + i % 3, i as f64)).collect();
        let (batches, _) = TBatcher::new().build(&events);
        // For each node, its events must appear in strictly increasing
        // batch order.
        let mut batch_of = vec![0usize; events.len()];
        for (bi, b) in batches.iter().enumerate() {
            for &i in &b.event_indices {
                batch_of[i] = bi;
            }
        }
        for node in 0..7 {
            let mut last = None;
            for (i, e) in events.iter().enumerate() {
                if e.src == node || e.dst == node {
                    if let Some(prev) = last {
                        assert!(batch_of[i] > prev, "event {i} not after {prev}");
                    }
                    last = Some(batch_of[i]);
                }
            }
        }
    }

    #[test]
    fn every_event_is_assigned_exactly_once() {
        let events: Vec<TemporalEvent> = (0..40).map(|i| ev(i % 5, 5 + i % 6, i as f64)).collect();
        let (batches, ops) = TBatcher::new().build(&events);
        let total: usize = batches.iter().map(TBatch::len).sum();
        assert_eq!(total, events.len());
        assert_eq!(ops, 4 * events.len() as u64);
    }

    #[test]
    fn empty_input_produces_no_batches() {
        let (batches, ops) = TBatcher::new().build(&[]);
        assert!(batches.is_empty());
        assert_eq!(ops, 0);
    }

    #[test]
    fn zero_window_yields_singleton_batches() {
        let b = WindowBatcher::new(0, 8);
        let batches = b.partition(&[5, 10, 11, 40]);
        assert_eq!(batches.len(), 4);
        for (i, mb) in batches.iter().enumerate() {
            assert_eq!(mb.len, 1);
            assert_eq!(mb.start, i);
            assert_eq!(mb.ready_ns, [5, 10, 11, 40][i]);
        }
    }

    #[test]
    fn window_close_waits_out_the_deadline() {
        let b = WindowBatcher::new(100, 8);
        let batches = b.partition(&[0, 30, 90, 150]);
        // First three arrive within [0, 100]; the fourth anchors anew.
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].indices(), 0..3);
        assert_eq!(batches[0].ready_ns, 100);
        assert_eq!(batches[1].indices(), 3..4);
        assert_eq!(batches[1].ready_ns, 250);
    }

    #[test]
    fn capacity_close_fires_before_the_deadline() {
        let b = WindowBatcher::new(1_000, 2);
        let batches = b.partition(&[0, 10, 20, 30]);
        assert_eq!(batches.len(), 2);
        // Full batches become ready at their last member's arrival.
        assert_eq!(batches[0].ready_ns, 10);
        assert_eq!(batches[1].ready_ns, 30);
    }

    #[test]
    fn partition_covers_every_item_once() {
        let arrivals: Vec<u64> = (0..57)
            .map(|i| i * 13 % 400)
            .scan(0, |acc, x| {
                *acc += x;
                Some(*acc)
            })
            .collect();
        let b = WindowBatcher::new(500, 5);
        let batches = b.partition(&arrivals);
        let total: usize = batches.iter().map(|m| m.len).sum();
        assert_eq!(total, arrivals.len());
        for w in batches.windows(2) {
            assert_eq!(w[0].start + w[0].len, w[1].start, "contiguous coverage");
            assert!(w[0].ready_ns <= w[1].ready_ns, "ready times are monotone");
        }
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unsorted_arrivals_are_rejected() {
        WindowBatcher::new(10, 2).partition(&[5, 3]);
    }
}
