//! A minimal Rust surface lexer for the static analyzer.
//!
//! The workspace builds offline with no external crates, so this module
//! stands in for a `syn` parse: it does not build a grammar-level AST,
//! but it produces everything the LINT rules need to reason about a
//! source file *without* being fooled by comments or string literals:
//!
//! * `cleaned` — the source text with every comment, string, char and
//!   byte-string literal blanked to spaces (byte-for-byte, newlines
//!   preserved), so pattern scans over it see only real code tokens and
//!   line/column arithmetic stays valid.
//! * `allows` — every `// lint: allow(<slug>) — <rationale>` escape
//!   hatch, with its line, slug and (possibly empty) rationale.
//! * `test_regions` — line ranges covered by `#[cfg(test)]` modules, so
//!   decision-path rules can exempt test code.
//! * `fns` — `(line, name)` for every `fn` item, so findings can name
//!   the enclosing function.
//!
//! The lexer handles line comments, nested block comments, string
//! escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth), byte and
//! raw-byte strings, char literals, and distinguishes lifetimes (`'a`)
//! from char literals.

/// One `// lint: allow(<slug>) — <rationale>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule slug inside the parentheses.
    pub slug: String,
    /// Free-text rationale after the closing parenthesis (separator
    /// dashes/colons stripped). Empty means the escape hatch is invalid.
    pub rationale: String,
    /// Whether code precedes the comment on the same line (a trailing
    /// allow applies to its own line; a standalone one to the next).
    pub trailing: bool,
}

/// Lexed view of one source file (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Comment/string-blanked source, same byte length as the input.
    pub cleaned: String,
    /// All lint-allow escape hatches found in comments.
    pub allows: Vec<Allow>,
    /// 1-based inclusive line ranges of `#[cfg(test)]` modules.
    pub test_regions: Vec<(usize, usize)>,
    /// `(1-based line, name)` of every `fn` item, in file order.
    pub fns: Vec<(usize, String)>,
}

impl Lexed {
    /// Whether a 1-based line falls inside a `#[cfg(test)]` module.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| s <= line && line <= e)
    }

    /// The escape hatch covering `line` for `slug`, if any: a trailing
    /// allow on the line itself, or a standalone allow on the line above.
    pub fn allow_for(&self, slug: &str, line: usize) -> Option<&Allow> {
        self.allows.iter().find(|a| {
            a.slug == slug
                && ((a.trailing && a.line == line) || (!a.trailing && a.line + 1 == line))
        })
    }

    /// Name of the innermost-started `fn` at or before `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&str> {
        self.fns
            .iter()
            .take_while(|&&(l, _)| l <= line)
            .last()
            .map(|(_, n)| n.as_str())
    }
}

/// Lexes `src` (see module docs for what is extracted).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut cleaned: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    // Columns of the first code (non-blank) byte per line, to classify
    // trailing vs standalone comments.
    let mut line_has_code = false;

    // Push a blanked byte (newlines kept so line math survives).
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                cleaned.push(b'\n');
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: capture text, blank it out.
                let end = src[i..].find('\n').map_or(bytes.len(), |p| i + p);
                let text = &src[i + 2..end];
                if let Some(a) = parse_allow(text, line, line_has_code) {
                    allows.push(a);
                }
                for &c in &bytes[i..end] {
                    blank(&mut cleaned, c);
                }
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, nested.
                let mut depth = 1usize;
                blank(&mut cleaned, bytes[i]);
                blank(&mut cleaned, bytes[i + 1]);
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut cleaned, bytes[i]);
                        blank(&mut cleaned, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut cleaned, bytes[i]);
                        blank(&mut cleaned, bytes[i + 1]);
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                            line_has_code = false;
                        }
                        blank(&mut cleaned, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(bytes, i, &mut cleaned, &mut line);
                line_has_code = true;
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte(bytes, i, &mut cleaned, &mut line);
                line_has_code = true;
            }
            b'\'' => {
                // Char literal vs lifetime.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    // Escaped char literal: consume to closing quote.
                    blank(&mut cleaned, bytes[i]);
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        blank(&mut cleaned, bytes[i]);
                        i += 1;
                    }
                    if i < bytes.len() {
                        blank(&mut cleaned, bytes[i]);
                        i += 1;
                    }
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    // 'x' — plain char literal.
                    blank(&mut cleaned, bytes[i]);
                    blank(&mut cleaned, bytes[i + 1]);
                    blank(&mut cleaned, bytes[i + 2]);
                    i += 3;
                } else {
                    // Lifetime: keep the tick (harmless) and move on.
                    cleaned.push(b'\'');
                    i += 1;
                }
                line_has_code = true;
            }
            _ => {
                if !b.is_ascii_whitespace() {
                    line_has_code = true;
                }
                cleaned.push(b);
                i += 1;
            }
        }
    }

    let cleaned = String::from_utf8(cleaned).expect("blanking preserves UTF-8");
    let test_regions = find_test_regions(&cleaned);
    let fns = find_fns(&cleaned);
    Lexed {
        cleaned,
        allows,
        test_regions,
        fns,
    }
}

/// Whether `bytes[i..]` starts a raw/byte string (`r"`, `r#`, `b"`,
/// `br"`, `br#`) rather than an identifier that merely begins with the
/// letter.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // Don't fire in the middle of an identifier (e.g. `var"` is not
    // possible, but `expr` ending in r followed by "..." would be).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let rest = &bytes[i..];
    // `r#ident` is a raw identifier, not a raw string: after the
    // prefix and any hashes there must be an opening quote.
    let hashes_then_quote = |s: &[u8]| {
        let n = s.iter().take_while(|&&c| c == b'#').count();
        s.get(n) == Some(&b'"')
    };
    match rest {
        [b'r', b'"', ..] | [b'b', b'"', ..] | [b'b', b'r', b'"', ..] => true,
        [b'r', b'#', ..] => hashes_then_quote(&rest[1..]),
        [b'b', b'r', b'#', ..] => hashes_then_quote(&rest[2..]),
        _ => false,
    }
}

/// Skips a plain (or byte) string starting at the opening quote,
/// blanking its contents. Returns the index just past the close.
fn skip_string(bytes: &[u8], start: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    out.push(b'"');
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                out.push(b' ');
                out.push(b' ');
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                *line += 1;
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at the prefix.
fn skip_raw_or_byte(bytes: &[u8], start: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    let mut i = start;
    // Consume prefix letters.
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        out.push(b' ');
        i += 1;
    }
    // Plain byte string `b"…"` delegates to the escape-aware skipper.
    if i < bytes.len() && bytes[i] == b'"' && !bytes[start..i].contains(&b'r') {
        return skip_string(bytes, i, out, line);
    }
    // Raw string: count hashes, then scan for `"#…#` of the same depth.
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        out.push(b' ');
        hashes += 1;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        out.push(b'"');
        i += 1;
    }
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let close_ok = bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes;
            if close_ok {
                out.push(b'"');
                i += 1;
                for _ in 0..hashes {
                    out.push(b' ');
                    i += 1;
                }
                return i;
            }
        }
        if bytes[i] == b'\n' {
            out.push(b'\n');
            *line += 1;
        } else {
            out.push(b' ');
        }
        i += 1;
    }
    i
}

/// Parses a `lint: allow(<slug>)` escape hatch out of one line-comment
/// body (the text after `//`).
fn parse_allow(text: &str, line: usize, trailing: bool) -> Option<Allow> {
    let t = text.trim();
    let rest = t.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let slug = rest[..close].trim().to_string();
    let mut rationale = rest[close + 1..].trim();
    // Strip any leading separator (em-dash, hyphen, colon).
    rationale = rationale.trim_start_matches(['—', '-', ':', ' ']).trim();
    Some(Allow {
        line,
        slug,
        rationale: rationale.to_string(),
        trailing,
    })
}

/// Finds `#[cfg(test)] mod … { … }` line ranges in cleaned source.
fn find_test_regions(cleaned: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut search_from = 0usize;
    while let Some(p) = cleaned[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + p;
        // The module body is the first `{` after the attribute; match
        // braces to its close.
        if let Some(open_rel) = cleaned[attr_at..].find('{') {
            let open = attr_at + open_rel;
            let close = match_brace(cleaned.as_bytes(), open);
            let start_line = line_of(cleaned, attr_at);
            let end_line = line_of(cleaned, close.min(cleaned.len().saturating_sub(1)));
            regions.push((start_line, end_line));
            search_from = open + 1;
        } else {
            break;
        }
    }
    regions
}

/// Index of the brace matching the `{` at `open` (or end of input).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len().saturating_sub(1)
}

/// 1-based line number of byte offset `at`.
fn line_of(s: &str, at: usize) -> usize {
    1 + s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// Extracts `(line, name)` of every `fn` item from cleaned source.
fn find_fns(cleaned: &str) -> Vec<(usize, String)> {
    let mut fns = Vec::new();
    let bytes = cleaned.as_bytes();
    let mut from = 0usize;
    while let Some(p) = cleaned[from..].find("fn ") {
        let at = from + p;
        // Must be a token boundary ("fn" not the tail of an ident).
        let boundary = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        if boundary {
            let rest = cleaned[at + 3..].trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                fns.push((line_of(cleaned, at), name));
            }
        }
        from = at + 3;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"HashMap in a string\"; // HashMap in a comment\nlet y = 1;";
        let l = lex(src);
        assert!(!l.cleaned.contains("HashMap"));
        assert!(l.cleaned.contains("let y = 1;"));
        assert_eq!(l.cleaned.len(), src.len());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_but_lifetimes_survive() {
        let src = "let s = r#\"Instant::now\"#; let c = 'x'; fn f<'a>(v: &'a u8) {}";
        let l = lex(src);
        assert!(!l.cleaned.contains("Instant::now"));
        assert!(!l.cleaned.contains('x'));
        assert!(l.cleaned.contains("&'a u8"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "a /* one /* two */ still comment */ b";
        let l = lex(src);
        assert!(l.cleaned.starts_with('a'));
        assert!(l.cleaned.ends_with('b'));
        assert!(!l.cleaned.contains("comment"));
    }

    #[test]
    fn allow_comments_are_parsed_with_rationale() {
        let src = "let m = HashMap::new(); // lint: allow(hash-iteration) — point lookups only\n\
                   // lint: allow(nondeterminism-source): pacing only\n\
                   let t = 1;\n\
                   // lint: allow(hash-iteration)\n";
        let l = lex(src);
        assert_eq!(l.allows.len(), 3);
        assert!(l.allows[0].trailing);
        assert_eq!(l.allows[0].slug, "hash-iteration");
        assert_eq!(l.allows[0].rationale, "point lookups only");
        assert!(!l.allows[1].trailing);
        assert_eq!(l.allows[1].rationale, "pacing only");
        assert!(l.allows[2].rationale.is_empty(), "no rationale given");
        // Coverage: trailing applies to its own line, standalone to next.
        assert!(l.allow_for("hash-iteration", 1).is_some());
        assert!(l.allow_for("nondeterminism-source", 3).is_some());
        assert!(l.allow_for("nondeterminism-source", 2).is_none());
    }

    #[test]
    fn cfg_test_regions_cover_module_lines() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let l = lex(src);
        assert_eq!(l.test_regions, vec![(2, 5)]);
        assert!(!l.is_test_line(1));
        assert!(l.is_test_line(4));
        assert!(!l.is_test_line(6));
    }

    #[test]
    fn fn_map_names_enclosing_functions() {
        let src = "pub fn alpha() {}\n\nfn beta_2(x: u8) {}\n";
        let l = lex(src);
        assert_eq!(
            l.fns,
            vec![(1, "alpha".to_string()), (3, "beta_2".to_string())]
        );
        assert_eq!(l.enclosing_fn(2), Some("alpha"));
        assert_eq!(l.enclosing_fn(3), Some("beta_2"));
    }
}
