//! `dgnn-lint` CLI: static determinism & pricing-discipline gate.
//!
//! ```text
//! dgnn-lint [--root DIR] [--json] [--baseline FILE] [--write-baseline FILE]
//! ```
//!
//! Exit status: `0` when no live finding remains (grandfathered
//! findings don't fail the gate), `1` on any live finding, `2` on
//! usage or I/O errors. CI runs `dgnn-lint --json` with no baseline:
//! the checked-in tree must lint clean with an empty baseline.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dgnn_lint::{analyze_root, Baseline, RuleSet};

struct Opts {
    root: Option<PathBuf>,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dgnn-lint [--root DIR] [--json] [--baseline FILE] \
         [--write-baseline FILE]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        root: None,
        json: false,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => opts.root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--json" => opts.json = true,
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// Nearest ancestor of the current directory holding a `[workspace]`
/// manifest (falls back to the current directory).
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return PathBuf::from("."),
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let root = opts.root.unwrap_or_else(find_root);
    let baseline = match &opts.baseline {
        Some(p) => match Baseline::load(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dgnn-lint: cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => Baseline::empty(),
    };
    let report = match analyze_root(Path::new(&root), &RuleSet::all(), &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dgnn-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.write_baseline {
        let body = Baseline::render(&report.findings);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("dgnn-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "dgnn-lint: wrote {} finding(s) to baseline {}",
            report.findings.len(),
            path.display()
        );
    }
    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
