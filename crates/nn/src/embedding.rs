//! Embedding tables with gather-kernel accounting.

use dgnn_device::{DeviceTensor, Dispatcher};
use dgnn_tensor::{Initializer, Tensor, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

/// A dense embedding table `[rows, dim]` looked up by row index.
///
/// Lookups dispatch a gather kernel (irregular access), matching how the
/// profiled frameworks fetch node/edge embeddings. The table itself is a
/// weight: it lives on the compute device and never crosses PCIe.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    table: Param,
    rows: usize,
    dim: usize,
}

impl EmbeddingTable {
    /// Creates a normally initialized table.
    pub fn new(rows: usize, dim: usize, rng: &mut TensorRng) -> Self {
        EmbeddingTable {
            table: Param::new("table", rng.init(&[rows, dim], Initializer::Normal(1.0))),
            rows,
            dim,
        }
    }

    /// Creates a table from existing values.
    ///
    /// # Panics
    ///
    /// Panics when `values` is not rank 2.
    pub fn from_tensor(values: Tensor) -> Self {
        assert_eq!(values.rank(), 2, "embedding table must be rank 2");
        let rows = values.dims()[0];
        let dim = values.dims()[1];
        EmbeddingTable {
            table: Param::new("table", values),
            rows,
            dim,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The raw table.
    pub fn table(&self) -> &Tensor {
        &self.table.value
    }

    /// Gathers the rows at `indices`, dispatching a gather kernel.
    ///
    /// # Errors
    ///
    /// Returns an index error when any index exceeds the table rows.
    pub fn lookup(&self, dx: &mut Dispatcher, indices: &[usize]) -> Result<DeviceTensor> {
        self.lookup_scaled(dx, indices, 1.0)
    }

    /// [`EmbeddingTable::lookup`] with a representative-batch `scale`:
    /// the gather is priced (and the result tagged) as if `scale`× the
    /// physical index count had been fetched.
    ///
    /// # Errors
    ///
    /// Returns an index error when any index exceeds the table rows.
    pub fn lookup_scaled(
        &self,
        dx: &mut Dispatcher,
        indices: &[usize],
        scale: f64,
    ) -> Result<DeviceTensor> {
        dx.gather_rows("embedding_lookup", &self.table.value, indices, scale)
    }

    /// Writes updated rows back (scatter), dispatching a gather-family
    /// kernel and replacing the stored table.
    ///
    /// # Errors
    ///
    /// Returns shape/index errors from the scatter.
    pub fn update(
        &mut self,
        dx: &mut Dispatcher,
        indices: &[usize],
        rows: &DeviceTensor,
    ) -> Result<()> {
        self.table.value = dx.scatter_rows("embedding_update", &self.table.value, indices, rows)?;
        Ok(())
    }
}

impl Module for EmbeddingTable {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, KernelKind, PlatformSpec};

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    #[test]
    fn lookup_returns_requested_rows() {
        let mut rng = TensorRng::seed(1);
        let table = EmbeddingTable::new(10, 4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let out = table.lookup(&mut dx, &[3, 3, 7]).unwrap();
        assert_eq!(out.data().dims(), &[3, 4]);
        assert_eq!(out.data().row(0).unwrap(), out.data().row(1).unwrap());
        assert_eq!(out.data().row(2).unwrap(), table.table().row(7).unwrap());
    }

    #[test]
    fn update_round_trips() {
        let mut rng = TensorRng::seed(2);
        let mut table = EmbeddingTable::new(6, 3, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let new_rows = dx.adopt(Tensor::full(&[2, 3], 9.0), 1.0);
        table.update(&mut dx, &[1, 4], &new_rows).unwrap();
        let got = table.lookup(&mut dx, &[1, 4]).unwrap();
        got.data().assert_close(new_rows.data(), 0.0);
    }

    #[test]
    fn lookup_dispatches_gather_kernel() {
        let mut rng = TensorRng::seed(3);
        let table = EmbeddingTable::new(5, 2, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        table.lookup(&mut dx, &[0]).unwrap();
        let hist = dx.executor().timeline().kernel_histogram();
        assert!(hist.iter().any(|(k, _, _)| *k == KernelKind::Gather));
    }

    #[test]
    fn out_of_range_index_errors() {
        let mut rng = TensorRng::seed(4);
        let table = EmbeddingTable::new(5, 2, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        assert!(table.lookup(&mut dx, &[5]).is_err());
    }

    #[test]
    fn from_tensor_wraps_values() {
        let t = Tensor::eye(3);
        let table = EmbeddingTable::from_tensor(t.clone());
        assert_eq!(table.rows(), 3);
        assert_eq!(table.table(), &t);
    }
}
