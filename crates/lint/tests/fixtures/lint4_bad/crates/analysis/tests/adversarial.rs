//! LINT4 adversarial fixture (2/4): RULE1 has both halves, RULE2 only
//! the adversarial half — its clean twin is missing.

#[test]
fn rule1_overlap_on_lane_is_flagged() {}

#[test]
fn rule1_serial_twin_passes() {}

#[test]
fn rule2_gap_before_dependency_is_flagged() {}
