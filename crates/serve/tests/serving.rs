//! End-to-end serving properties: determinism, conservation,
//! backpressure, warm-pool amortization, and sanitizer cleanliness.

use dgnn_datasets::{wikipedia, Scale};
use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_models::{InferenceConfig, Jodie, JodieConfig, ReplicaHandle, Tgat, TgatConfig};
use dgnn_serve::{serve, ServeConfig, ServedModel};

fn jodie_entry(weight: f64) -> ServedModel {
    let data = wikipedia(Scale::Tiny, 11);
    ServedModel {
        handle: ReplicaHandle::new("jodie", move || {
            Box::new(Jodie::new(data.clone(), JodieConfig::default(), 11))
        }),
        cfg: InferenceConfig::default()
            .with_batch_size(64)
            .with_max_units(1),
        weight,
    }
}

fn tgat_entry(weight: f64) -> ServedModel {
    let data = wikipedia(Scale::Tiny, 13);
    ServedModel {
        handle: ReplicaHandle::new("tgat", move || {
            Box::new(Tgat::new(data.clone(), TgatConfig::default(), 13))
        }),
        cfg: InferenceConfig::default()
            .with_batch_size(32)
            .with_neighbors(5)
            .with_max_units(1),
        weight,
    }
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        seed: 7,
        n_requests: 24,
        arrival_rate_rps: 200.0,
        batch_window: DurationNs::from_millis(3),
        max_batch: 4,
        pool_size: 2,
        queue_bound: 256,
        mode: ExecMode::Gpu,
        trace: false,
        spec: PlatformSpec::default(),
    }
}

#[test]
fn serving_is_deterministic() {
    let cfg = base_cfg();
    let zoo = vec![jodie_entry(3.0), tgat_entry(1.0)];
    let zoo2 = vec![jodie_entry(3.0), tgat_entry(1.0)];
    let a = serve(&cfg, &zoo);
    let b = serve(&cfg, &zoo2);
    assert_eq!(a.requests, b.requests, "per-request records must replay");
    assert_eq!(a.report.latency, b.report.latency);
    assert_eq!(a.report.makespan, b.report.makespan);
    let checks_a: Vec<u32> = a
        .batches
        .iter()
        .map(|x| x.summary.checksum.to_bits())
        .collect();
    let checks_b: Vec<u32> = b
        .batches
        .iter()
        .map(|x| x.summary.checksum.to_bits())
        .collect();
    assert_eq!(checks_a, checks_b, "service numerics must be bit-identical");
}

#[test]
fn every_request_is_served_or_shed_exactly_once() {
    let cfg = base_cfg();
    let outcome = serve(&cfg, &[jodie_entry(1.0), tgat_entry(1.0)]);
    assert_eq!(
        outcome.report.served + outcome.report.shed,
        cfg.n_requests,
        "request conservation"
    );
    let mut ids: Vec<usize> = outcome
        .requests
        .iter()
        .map(|r| r.id)
        .chain(outcome.shed.iter().map(|r| r.id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), cfg.n_requests, "no id served twice or lost");
    // Batch membership matches the per-request records.
    let member_total: usize = outcome.batches.iter().map(|b| b.requests.len()).sum();
    assert_eq!(member_total, outcome.report.served);
}

#[test]
fn request_stations_are_ordered() {
    let outcome = serve(&base_cfg(), &[jodie_entry(1.0), tgat_entry(1.0)]);
    for r in &outcome.requests {
        assert!(r.arrival <= r.assembled, "request {} assembled early", r.id);
        assert!(r.assembled <= r.started, "request {} started early", r.id);
        assert!(r.started < r.completed, "request {} zero service", r.id);
    }
}

#[test]
fn tiny_queue_bound_sheds_load() {
    let mut cfg = base_cfg();
    cfg.queue_bound = 1;
    cfg.arrival_rate_rps = 5_000.0; // heavy overload
    let outcome = serve(&cfg, &[jodie_entry(1.0)]);
    assert!(outcome.report.shed > 0, "overload must shed");
    assert!(outcome.report.served > 0, "but some requests are served");
}

#[test]
fn zero_window_yields_singleton_batches() {
    let mut cfg = base_cfg();
    cfg.batch_window = DurationNs::ZERO;
    let outcome = serve(&cfg, &[jodie_entry(1.0)]);
    assert!(outcome.batches.iter().all(|b| b.requests.len() == 1));
    assert_eq!(outcome.report.batches, outcome.report.served);
}

#[test]
fn wide_window_assembles_multi_request_batches() {
    let mut cfg = base_cfg();
    cfg.batch_window = DurationNs::from_millis(50);
    cfg.arrival_rate_rps = 2_000.0;
    let outcome = serve(&cfg, &[jodie_entry(1.0)]);
    assert!(
        outcome.report.mean_batch_size > 1.5,
        "dense arrivals with a wide window must batch (got {})",
        outcome.report.mean_batch_size
    );
    assert!(outcome
        .batches
        .iter()
        .all(|b| b.requests.len() <= cfg.max_batch));
}

#[test]
fn single_model_mix_never_cold_starts_after_provisioning() {
    let outcome = serve(&base_cfg(), &[jodie_entry(1.0)]);
    assert_eq!(
        outcome.report.cold_services, 0,
        "one model, every slot provisioned with it"
    );
    assert!(
        outcome.report.warmup_share() > 0.0,
        "provisioning is priced"
    );
}

#[test]
fn multi_model_mix_on_pool_1_thrashes_and_pool_matching_mix_heals_it() {
    // Pool of 1 with two models: every model alternation is an eviction.
    let mut cfg = base_cfg();
    cfg.pool_size = 1;
    let zoo = vec![jodie_entry(1.0), tgat_entry(1.0)];
    let thrash = serve(&cfg, &zoo);
    assert!(
        thrash.report.cold_services > 0,
        "alternating mix on one slot must swap models"
    );

    // Pool of 2 holds both models resident: no swap ever needed.
    cfg.pool_size = 2;
    let zoo2 = vec![jodie_entry(1.0), tgat_entry(1.0)];
    let healed = serve(&cfg, &zoo2);
    assert_eq!(healed.report.cold_services, 0);
    assert!(
        healed.report.latency.p99 < thrash.report.latency.p99,
        "warm pool must cut tail latency: pool2 p99 {} vs pool1 p99 {}",
        healed.report.latency.p99.as_nanos(),
        thrash.report.latency.p99.as_nanos()
    );
}

#[test]
fn served_sessions_pass_the_sanitizer() {
    let mut cfg = base_cfg();
    cfg.trace = true;
    cfg.n_requests = 16;
    let outcome = serve(&cfg, &[jodie_entry(1.0), tgat_entry(1.0)]);
    assert_eq!(outcome.sessions.len(), cfg.pool_size);
    for (slot, session) in outcome.sessions.iter().enumerate() {
        let report = dgnn_analysis::audit(session);
        assert!(
            report.is_clean(),
            "replica {slot} timeline has hazards: {report:?}"
        );
        assert!(!session.timeline().is_empty(), "replica {slot} never ran");
    }
}

#[test]
fn report_renders_every_station() {
    let outcome = serve(&base_cfg(), &[jodie_entry(1.0)]);
    let text = outcome.report.render("serve smoke");
    for needle in [
        "latency",
        "assembly",
        "queue wait",
        "service",
        "warm-up share",
    ] {
        assert!(text.contains(needle), "report missing {needle}:\n{text}");
    }
    // No served config enabled the feature cache: the cache line is
    // omitted rather than rendered as all zeros.
    assert_eq!(outcome.report.cache.lookups(), 0);
    assert!(!text.contains("feature cache"), "{text}");
}

#[test]
fn warm_replicas_keep_feature_caches_across_requests() {
    // One TGAT model with the device feature cache on: the first
    // service cold-misses, later services on the same warm slot re-probe
    // the same sampled rows and hit. The report aggregates the counters
    // across replica sessions.
    let mut cfg = base_cfg();
    cfg.trace = true;
    let entry = || {
        let mut e = tgat_entry(1.0);
        e.cfg = e.cfg.clone().with_feature_cache(1 << 16);
        e
    };
    let outcome = serve(&cfg, &[entry()]);
    let stats = outcome.report.cache;
    assert!(stats.misses > 0, "a cold cache must miss first");
    assert!(
        stats.hits > 0,
        "warm replicas must re-serve cached rows across requests: {stats:?}"
    );
    let text = outcome.report.render("cached serve");
    assert!(text.contains("feature cache"));
    // The per-class split must account for every counted probe and
    // surface TGAT's node-feature traffic as its own render line.
    let by_class = &outcome.report.cache_by_class;
    let class_hits: u64 = by_class.iter().map(|s| s.hits).sum();
    let class_misses: u64 = by_class.iter().map(|s| s.misses).sum();
    assert_eq!(class_hits, stats.hits, "per-class hits must sum to total");
    assert_eq!(class_misses, stats.misses);
    let nf = &by_class[dgnn_device::TensorClass::NodeFeature.index()];
    assert!(nf.lookups() > 0, "TGAT probes node-feature rows");
    assert!(text.contains("node_feature"), "{text}");
    // Cache hits are legitimately unpriced: the sanitizer stays clean
    // and tallies them instead of flagging RULE5.
    let mut audited_hits = 0;
    for session in &outcome.sessions {
        let report = dgnn_analysis::audit(session);
        assert!(report.is_clean(), "cached replica has hazards: {report:?}");
        audited_hits += report.stats.cache_hit_rows;
    }
    assert_eq!(audited_hits, stats.hits, "trace and counters must agree");

    // And the whole thing replays bit-identically.
    let again = serve(&cfg, &[entry()]);
    assert_eq!(again.report.cache, stats);
}

#[test]
fn serve_config_validates_its_arrival_rate() {
    let mut cfg = base_cfg();
    assert!(cfg.validate().is_ok());
    cfg.arrival_rate_rps = f64::INFINITY;
    let err = cfg.validate().unwrap_err();
    assert_eq!(err.reason, "not finite");
    assert!(err.to_string().contains("arrival rate"));
    cfg.arrival_rate_rps = -1.0;
    assert_eq!(cfg.validate().unwrap_err().reason, "not positive");
}
