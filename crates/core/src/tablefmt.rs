//! Minimal aligned text-table rendering for experiment reports.

/// A simple column-aligned text table with a title row.
///
/// ```
/// use dgnn_profile::TextTable;
///
/// let mut t = TextTable::new("demo", &["name", "value"]);
/// t.row(&["alpha".to_string(), "1".to_string()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(sep_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TextTable::new("t", &["a", "longheader"]);
        t.row(&["xxxxxx".to_string(), "1".to_string()]);
        t.row(&["y".to_string(), "22".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
        let col2_positions: Vec<usize> = lines[3..]
            .iter()
            .chain(std::iter::once(&lines[1]))
            .map(|l| l.split_whitespace().count())
            .collect();
        assert!(col2_positions.iter().all(|&c| c == 2));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("t", &["a", "b", "c"]);
        t.row(&["1".to_string()]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new("empty", &["x"]);
        assert!(t.is_empty());
        assert!(t.render().contains("empty"));
    }
}
