//! Property-style tests over the dynamic-graph substrate invariants,
//! driven by a seeded sweep so the suite builds offline.

use dgnn_graph::{
    snapshots_from_events, EventStream, Graph, NeighborSampler, SampleStrategy, TBatcher,
    TemporalAdjacency, TemporalEvent,
};
use dgnn_tensor::TensorRng;
use std::collections::HashSet;

/// Deterministic synthetic event stream with `n` nodes and `m` events.
fn gen_stream(n: usize, m: usize, seed: u64) -> EventStream {
    let mut rng = TensorRng::seed(seed);
    let mut t = 0.0f64;
    let events = (0..m)
        .map(|i| {
            t += rng.index(100) as f64 / 10.0;
            let src = rng.index(n);
            let mut dst = rng.index(n);
            if dst == src {
                dst = (dst + 1) % n;
            }
            TemporalEvent {
                src,
                dst,
                time: t,
                feature_idx: i,
            }
        })
        .collect();
    EventStream::new(n, events).expect("generated stream is valid")
}

/// Sweep of streams with varied sizes per seed.
fn stream_cases(max_nodes: usize, max_events: usize, n_cases: usize) -> Vec<EventStream> {
    let mut rng = TensorRng::seed(0x57e3);
    (0..n_cases)
        .map(|_| {
            let n = rng.index(max_nodes - 1) + 2;
            let m = rng.index(max_events) + 1;
            gen_stream(n, m, rng.next_u64())
        })
        .collect()
}

/// Deterministic random edge list over `n` nodes.
fn gen_edges(n: usize, max_edges: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = TensorRng::seed(seed);
    let count = rng.index(max_edges + 1);
    (0..count).map(|_| (rng.index(n), rng.index(n))).collect()
}

#[test]
fn csr_round_trips_edge_multiset() {
    let mut rng = TensorRng::seed(0xc5a);
    for _ in 0..24 {
        let n = rng.index(18) + 2;
        let edges = gen_edges(n, 60, rng.next_u64());
        let g = Graph::from_edges(n, &edges).unwrap();
        assert_eq!(g.n_edges(), edges.len());
        let mut got: Vec<(usize, usize)> = g.iter_edges().map(|(s, d, _)| (s, d)).collect();
        let mut want = edges;
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn degrees_sum_to_edge_count() {
    let mut rng = TensorRng::seed(0xde6);
    for _ in 0..24 {
        let n = rng.index(18) + 2;
        let edges = gen_edges(n, 60, rng.next_u64());
        let g = Graph::from_edges(n, &edges).unwrap();
        let total: usize = (0..n).map(|v| g.out_degree(v)).sum();
        assert_eq!(total, g.n_edges());
    }
}

#[test]
fn sampled_neighbors_always_precede_query() {
    let mut rng = TensorRng::seed(0x5a3);
    for stream in stream_cases(12, 80, 16) {
        let adj = TemporalAdjacency::from_stream(&stream);
        let t_query = stream.end_time() / 2.0 + 1.0;
        for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
            let sampler = NeighborSampler::new(strategy, rng.next_u64());
            for node in 0..stream.n_nodes() {
                let (picked, _) = sampler.sample(&adj, node, t_query, 5);
                for p in picked {
                    assert!(
                        p.time < t_query,
                        "sample at {} not before {}",
                        p.time,
                        t_query
                    );
                }
            }
        }
    }
}

#[test]
fn bisection_count_matches_brute_force() {
    for stream in stream_cases(10, 60, 16) {
        let adj = TemporalAdjacency::from_stream(&stream);
        let t_query = stream.end_time() * 0.7;
        for node in 0..stream.n_nodes() {
            let brute = stream
                .events()
                .iter()
                .filter(|e| (e.src == node || e.dst == node) && e.time < t_query)
                .count();
            assert_eq!(adj.count_before(node, t_query).0, brute);
        }
    }
}

#[test]
fn khop_batch_matches_serial_across_streams_strategies_and_threads() {
    let mut rng = TensorRng::seed(0xba7c);
    for stream in stream_cases(14, 120, 8) {
        let adj = TemporalAdjacency::from_stream(&stream);
        let t_query = stream.end_time() * 0.8 + 1.0;
        let roots: Vec<(usize, f64)> = (0..stream.n_nodes().min(24))
            .map(|v| (v, t_query))
            .collect();
        for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
            let sampler = NeighborSampler::new(strategy, rng.next_u64());
            let (serial, serial_cost) = sampler.sample_khop(&adj, &roots, &[4, 3]);
            for threads in [1, 3, 8] {
                let (parallel, cost) =
                    sampler.sample_khop_batch_threads(&adj, &roots, &[4, 3], threads);
                assert_eq!(serial, parallel);
                assert_eq!(serial_cost, cost);
            }
        }
    }
}

#[test]
fn degree_zero_nodes_cost_nothing() {
    for stream in stream_cases(16, 40, 12) {
        let adj = TemporalAdjacency::from_stream(&stream);
        let sampler = NeighborSampler::new(SampleStrategy::Uniform, 5);
        for node in 0..stream.n_nodes() {
            if adj.degree(node) > 0 {
                continue;
            }
            let (picked, cost) = sampler.sample(&adj, node, stream.end_time() + 1.0, 6);
            assert!(picked.is_empty());
            assert_eq!(cost.ops, 0, "no history, nothing to bisect");
            assert_eq!(cost.irregular_bytes, 0);
        }
    }
}

#[test]
fn tbatch_partitions_without_node_repeats() {
    for stream in stream_cases(10, 80, 16) {
        let (batches, _) = TBatcher::new().build_stream(&stream);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, stream.len());
        for b in &batches {
            let mut seen = HashSet::new();
            for &i in &b.event_indices {
                let e = stream.events()[i];
                assert!(seen.insert(e.src));
                assert!(seen.insert(e.dst));
            }
        }
    }
}

#[test]
fn tbatch_count_bounded_by_max_node_frequency() {
    for stream in stream_cases(8, 60, 16) {
        let (batches, _) = TBatcher::new().build_stream(&stream);
        let mut freq = vec![0usize; stream.n_nodes()];
        for e in stream.events() {
            freq[e.src] += 1;
            freq[e.dst] += 1;
        }
        let max_freq = freq.into_iter().max().unwrap_or(0);
        // The busiest node lower-bounds batches; batching never exceeds
        // the event count.
        assert!(batches.len() >= max_freq.min(stream.len()));
        assert!(batches.len() <= stream.len());
    }
}

#[test]
fn snapshots_cover_all_events_when_disjoint() {
    for stream in stream_cases(10, 60, 16) {
        let window = (stream.end_time() / 4.0).max(0.5);
        let seq = snapshots_from_events(&stream, window, window).unwrap();
        let total: usize = seq.iter().map(|s| s.graph.n_edges()).sum();
        assert_eq!(total, stream.len());
    }
}
