//! Static graph snapshot in compressed sparse row (CSR) form.

use crate::{GraphError, NodeId, Result};

/// A directed graph in CSR layout with optional edge weights.
///
/// Snapshots handed to the discrete-time models (EvolveGCN, ASTGNN,
/// MolDGNN) are `Graph`s; continuous-time models consume
/// [`crate::EventStream`]s instead.
///
/// ```
/// use dgnn_graph::Graph;
///
/// # fn main() -> Result<(), dgnn_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1), (0, 2), (2, 1)])?;
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(2), &[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n_nodes: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<NodeId>,
    weights: Vec<f32>,
}

impl Graph {
    /// Builds a graph from an unordered edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] when an endpoint exceeds
    /// `n_nodes`.
    pub fn from_edges(n_nodes: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let weighted: Vec<(NodeId, NodeId, f32)> =
            edges.iter().map(|&(s, d)| (s, d, 1.0)).collect();
        Graph::from_weighted_edges(n_nodes, &weighted)
    }

    /// Builds a graph from an unordered weighted edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] when an endpoint exceeds
    /// `n_nodes`.
    pub fn from_weighted_edges(n_nodes: usize, edges: &[(NodeId, NodeId, f32)]) -> Result<Self> {
        for &(s, d, _) in edges {
            if s >= n_nodes {
                return Err(GraphError::NodeOutOfBounds { node: s, n_nodes });
            }
            if d >= n_nodes {
                return Err(GraphError::NodeOutOfBounds { node: d, n_nodes });
            }
        }
        let mut counts = vec![0usize; n_nodes];
        for &(s, _, _) in edges {
            counts[s] += 1;
        }
        let mut row_ptr = vec![0usize; n_nodes + 1];
        for i in 0..n_nodes {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let mut col_idx = vec![0 as NodeId; edges.len()];
        let mut weights = vec![0.0f32; edges.len()];
        let mut cursor = row_ptr.clone();
        for &(s, d, w) in edges {
            col_idx[cursor[s]] = d;
            weights[cursor[s]] = w;
            cursor[s] += 1;
        }
        // Sort each row for deterministic neighbor order.
        for i in 0..n_nodes {
            let range = row_ptr[i]..row_ptr[i + 1];
            let mut pairs: Vec<(NodeId, f32)> = col_idx[range.clone()]
                .iter()
                .copied()
                .zip(weights[range.clone()].iter().copied())
                .collect();
            pairs.sort_by_key(|&(d, _)| d);
            for (k, (d, w)) in pairs.into_iter().enumerate() {
                col_idx[row_ptr[i] + k] = d;
                weights[row_ptr[i] + k] = w;
            }
        }
        Ok(Graph {
            n_nodes,
            row_ptr,
            col_idx,
            weights,
        })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node >= n_nodes`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.row_ptr[node + 1] - self.row_ptr[node]
    }

    /// Out-neighbors of `node`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics when `node >= n_nodes`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.col_idx[self.row_ptr[node]..self.row_ptr[node + 1]]
    }

    /// Edge weights parallel to [`Graph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics when `node >= n_nodes`.
    pub fn neighbor_weights(&self, node: NodeId) -> &[f32] {
        &self.weights[self.row_ptr[node]..self.row_ptr[node + 1]]
    }

    /// Iterates all `(src, dst, weight)` triples.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n_nodes).flat_map(move |s| {
            self.neighbors(s)
                .iter()
                .zip(self.neighbor_weights(s))
                .map(move |(&d, &w)| (s, d, w))
        })
    }

    /// Approximate in-memory footprint of the CSR arrays in bytes
    /// (what moving this snapshot over PCIe costs).
    pub fn byte_len(&self) -> u64 {
        (self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<NodeId>()
            + self.weights.len() * std::mem::size_of::<f32>()) as u64
    }

    /// The dense adjacency matrix as a row-major `n × n` buffer
    /// (MolDGNN ships dense adjacency matrices between CPU and GPU).
    pub fn to_dense_adjacency(&self) -> Vec<f32> {
        let n = self.n_nodes;
        let mut dense = vec![0.0f32; n * n];
        for (s, d, w) in self.iter_edges() {
            dense[s * n + d] = w;
        }
        dense
    }

    /// Symmetric-normalized adjacency with self-loops,
    /// `Â = D^{-1/2} (A + I) D^{-1/2}`, as a dense row-major buffer —
    /// the propagation operator of a GCN layer.
    pub fn normalized_adjacency(&self) -> Vec<f32> {
        let n = self.n_nodes;
        let mut a = self.to_dense_adjacency();
        for i in 0..n {
            a[i * n + i] += 1.0;
        }
        let mut deg = vec![0.0f32; n];
        for i in 0..n {
            deg[i] = a[i * n..(i + 1) * n].iter().sum::<f32>();
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] *= inv_sqrt[i] * inv_sqrt[j];
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_sorted_csr() {
        let g = Graph::from_edges(4, &[(1, 3), (1, 0), (0, 2), (3, 1)]).unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn rejects_out_of_bounds_nodes() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfBounds { node: 2, .. })
        ));
    }

    #[test]
    fn weighted_edges_preserved() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 0.5)]).unwrap();
        assert_eq!(g.neighbor_weights(0), &[0.5]);
    }

    #[test]
    fn iter_edges_round_trips() {
        let edges = vec![(0, 1), (2, 0), (1, 2)];
        let g = Graph::from_edges(3, &edges).unwrap();
        let mut out: Vec<(usize, usize)> = g.iter_edges().map(|(s, d, _)| (s, d)).collect();
        out.sort_unstable();
        let mut expect = edges;
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn dense_adjacency_matches_csr() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 2)]).unwrap();
        let d = g.to_dense_adjacency();
        assert_eq!(d[1], 1.0);
        assert_eq!(d[8], 1.0);
        assert_eq!(d.iter().sum::<f32>(), 2.0);
    }

    #[test]
    fn normalized_adjacency_rows_bounded() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let a = g.normalized_adjacency();
        // Symmetric normalization of a symmetric graph stays symmetric.
        for i in 0..3 {
            for j in 0..3 {
                assert!((a[i * 3 + j] - a[j * 3 + i]).abs() < 1e-6);
            }
        }
        // All entries in [0, 1].
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn byte_len_is_positive() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(g.byte_len() > 0);
    }
}
