//! Quickstart: profile one DGNN on the simulated platform in ~20 lines.
//!
//! Builds TGAT over a synthetic Wikipedia-like interaction stream, runs
//! GPU-mode inference, and prints the captured profile — the same
//! breakdown/utilization/bottleneck report the paper's Figure 7 panels
//! are built from.
//!
//! Run with: `cargo run --example quickstart`

use dgnn_suite::datasets::{wikipedia, Scale};
use dgnn_suite::device::{ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{DgnnModel, InferenceConfig, Tgat, TgatConfig};
use dgnn_suite::profile::InferenceProfile;

fn main() {
    // 1. A dataset: synthetic stand-in for JODIE's Wikipedia edit stream.
    let data = wikipedia(Scale::Tiny, 42);
    println!(
        "dataset: {} nodes, {} events, {}-dim edge features",
        data.stream.n_nodes(),
        data.stream.len(),
        data.edge_dim()
    );

    // 2. A model bound to it.
    let mut model = Tgat::new(data, TgatConfig::default(), 42);

    // 3. A simulated platform (Xeon 6226R + A6000 + PCIe 4.0).
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);

    // 4. Run inference: warm-up (context + model init + allocation) then
    //    four mini-batches of 200 events with 20 sampled neighbors each.
    let cfg = InferenceConfig::default()
        .with_batch_size(200)
        .with_neighbors(20)
        .with_max_units(4);
    let summary = model.run(&mut ex, &cfg).expect("inference succeeds");
    println!(
        "processed {} batches in {} simulated time (checksum {:.3})",
        summary.iterations, summary.inference_time, summary.checksum
    );

    // 5. Capture and print the full profile.
    let profile = InferenceProfile::capture(&ex, "inference");
    print!("{}", profile.render("TGAT / wikipedia / bs=200 / k=20"));
}
