//! FLOP and byte estimators for the simulated-kernel cost model.
//!
//! The device layer (`dgnn-device`) prices every kernel as
//! `launch + max(flops / effective_throughput, bytes / bandwidth)`.
//! These helpers centralize the arithmetic so models and layers report
//! consistent work estimates.
//!
//! The [`OpDescriptor`] type is the unit of exchange between this crate
//! and the device layer: every tensor op family emits a descriptor
//! (kind, flops, bytes, parallelism) from its own module, and the
//! dispatcher in `dgnn-device` charges exactly that descriptor while
//! executing the functional math — so priced work can never drift from
//! computed work.

/// Bytes per `f32` element.
pub const F32_BYTES: u64 = 4;

/// The op families the profiled DGNNs exercise.
///
/// These mirror the categories an Nsight Systems trace groups CUDA
/// kernels into for these models; the device layer maps each onto its
/// `KernelKind` one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Dense matrix multiplication (cuBLAS GEMM).
    Gemm,
    /// Element-wise arithmetic / activation.
    Elementwise,
    /// Reduction (sum/max) or softmax.
    Reduce,
    /// Gather / scatter / embedding lookup — irregular access.
    Gather,
    /// Sort or bisection-heavy index manipulation — irregular access.
    Sort,
}

impl OpKind {
    /// Whether this family pays the irregular-access bandwidth penalty.
    pub fn is_irregular(self) -> bool {
        matches!(self, OpKind::Gather | OpKind::Sort)
    }

    /// Short display name used in breakdown tables.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Gemm => "gemm",
            OpKind::Elementwise => "elementwise",
            OpKind::Reduce => "reduce",
            OpKind::Gather => "gather",
            OpKind::Sort => "sort",
        }
    }
}

/// Work description of one tensor operation, in device-neutral terms.
///
/// Constructed by the family helpers here and by the per-op emitters in
/// [`crate::ops`] so FLOP and byte estimates stay consistent across the
/// model zoo. The device dispatcher converts this 1:1 into its kernel
/// descriptor when charging the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDescriptor {
    /// Human-readable label (appears on the timeline).
    pub label: &'static str,
    /// Op family.
    pub kind: OpKind,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Bytes moved to/from memory.
    pub bytes: u64,
    /// Data-parallel lanes of work (drives occupancy).
    pub parallelism: u64,
}

impl OpDescriptor {
    /// A dense `[m, k] × [k, n]` GEMM.
    pub fn gemm(label: &'static str, m: usize, k: usize, n: usize) -> Self {
        OpDescriptor {
            label,
            kind: OpKind::Gemm,
            flops: matmul_flops(m, k, n),
            bytes: matmul_bytes(m, k, n),
            parallelism: matmul_parallelism(m, n),
        }
    }

    /// A batched GEMM of `b` independent `[m, k] × [k, n]` products.
    pub fn batched_gemm(label: &'static str, b: usize, m: usize, k: usize, n: usize) -> Self {
        OpDescriptor {
            label,
            kind: OpKind::Gemm,
            flops: b as u64 * matmul_flops(m, k, n),
            bytes: b as u64 * matmul_bytes(m, k, n),
            parallelism: b as u64 * matmul_parallelism(m, n),
        }
    }

    /// An element-wise op over `len` elements with `ops_per_elem`
    /// arithmetic ops and `n_inputs` input operands.
    pub fn elementwise(label: &'static str, len: usize, ops_per_elem: u64, n_inputs: u64) -> Self {
        OpDescriptor {
            label,
            kind: OpKind::Elementwise,
            flops: elementwise_flops(len, ops_per_elem),
            bytes: elementwise_bytes(len, n_inputs),
            parallelism: len as u64,
        }
    }

    /// A reduction/softmax op over an `[m, n]` matrix.
    pub fn reduce(label: &'static str, m: usize, n: usize) -> Self {
        OpDescriptor {
            label,
            kind: OpKind::Reduce,
            flops: softmax_flops(m, n),
            bytes: 2 * f32_bytes(m * n),
            parallelism: m as u64,
        }
    }

    /// A gather/scatter of `rows` rows of `width` f32 each.
    pub fn gather(label: &'static str, rows: usize, width: usize) -> Self {
        OpDescriptor {
            label,
            kind: OpKind::Gather,
            flops: 0,
            bytes: 2 * f32_bytes(rows * width),
            parallelism: rows as u64,
        }
    }

    /// A sort over `len` keys (comparison count `len·log2(len)`).
    pub fn sort(label: &'static str, len: usize) -> Self {
        let l = len.max(2) as u64;
        let log = 64 - l.leading_zeros() as u64;
        OpDescriptor {
            label,
            kind: OpKind::Sort,
            flops: l * log,
            bytes: 2 * f32_bytes(len) * log,
            parallelism: len as u64 / 2,
        }
    }

    /// Replaces the timeline label (descriptors from op emitters carry a
    /// generic family label; call sites override it for attribution).
    pub fn labeled(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// Scales the work by a logical batch multiplier: a representative
    /// tensor standing for `factor×` its physical rows charges
    /// `factor×` the flops, bytes and parallel lanes.
    pub fn scaled(mut self, factor: f64) -> Self {
        if factor != 1.0 {
            #[expect(
                clippy::cast_possible_truncation,
                reason = "rounded cost scaling fits u64"
            )]
            let mul = |v: u64| (v as f64 * factor).round() as u64;
            self.flops = mul(self.flops);
            self.bytes = mul(self.bytes);
            self.parallelism = mul(self.parallelism).max(1);
        }
        self
    }
}

/// FLOPs of a dense `[m, k] × [k, n]` matrix multiplication
/// (multiply–add counted as 2 FLOPs).
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Bytes moved by a dense `[m, k] × [k, n]` matmul (read A, read B, write C).
pub fn matmul_bytes(m: usize, k: usize, n: usize) -> u64 {
    F32_BYTES * (m as u64 * k as u64 + k as u64 * n as u64 + m as u64 * n as u64)
}

/// FLOPs of an element-wise op over `len` elements with `ops_per_elem`
/// arithmetic operations each.
pub fn elementwise_flops(len: usize, ops_per_elem: u64) -> u64 {
    len as u64 * ops_per_elem
}

/// Bytes moved by an element-wise op (`n_inputs` reads + one write).
pub fn elementwise_bytes(len: usize, n_inputs: u64) -> u64 {
    F32_BYTES * len as u64 * (n_inputs + 1)
}

/// Bytes of `len` `f32` elements.
pub fn f32_bytes(len: usize) -> u64 {
    F32_BYTES * len as u64
}

/// FLOPs of a row-wise softmax over an `[m, n]` matrix
/// (max, exp, sum, divide ≈ 4 passes).
pub fn softmax_flops(m: usize, n: usize) -> u64 {
    4 * m as u64 * n as u64
}

/// Degree of data parallelism of a GEMM: one lane per output element.
pub fn matmul_parallelism(m: usize, n: usize) -> u64 {
    m as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_counts_fma_as_two() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }

    #[test]
    fn matmul_bytes_counts_three_matrices() {
        assert_eq!(matmul_bytes(2, 3, 4), 4 * (6 + 12 + 8));
    }

    #[test]
    fn elementwise_estimates() {
        assert_eq!(elementwise_flops(10, 3), 30);
        assert_eq!(elementwise_bytes(10, 2), 4 * 10 * 3);
    }

    #[test]
    fn parallelism_is_output_size() {
        assert_eq!(matmul_parallelism(32, 64), 2048);
    }

    #[test]
    fn gemm_descriptor_matches_cost_helpers() {
        let d = OpDescriptor::gemm("t", 4, 5, 6);
        assert_eq!(d.flops, 240);
        assert_eq!(d.parallelism, 24);
        assert_eq!(d.kind, OpKind::Gemm);
        assert!(!d.kind.is_irregular());
    }

    #[test]
    fn batched_gemm_scales_by_batch() {
        let single = OpDescriptor::gemm("t", 4, 5, 6);
        let batched = OpDescriptor::batched_gemm("t", 3, 4, 5, 6);
        assert_eq!(batched.flops, 3 * single.flops);
        assert_eq!(batched.parallelism, 3 * single.parallelism);
    }

    #[test]
    fn gather_and_sort_are_irregular() {
        assert!(OpDescriptor::gather("g", 10, 8).kind.is_irregular());
        assert!(OpDescriptor::sort("s", 100).kind.is_irregular());
    }

    #[test]
    fn scaled_multiplies_all_work_fields() {
        let d = OpDescriptor::gemm("t", 4, 5, 6).scaled(2.5);
        assert_eq!(d.flops, 600);
        assert_eq!(d.parallelism, 60);
        let unit = OpDescriptor::gemm("t", 4, 5, 6).scaled(1.0);
        assert_eq!(unit, OpDescriptor::gemm("t", 4, 5, 6));
    }

    #[test]
    fn labeled_overrides_only_the_label() {
        let d = OpDescriptor::reduce("generic", 4, 8).labeled("softmax");
        assert_eq!(d.label, "softmax");
        assert_eq!(d.kind, OpKind::Reduce);
    }
}
