//! Adversarial and known-good traces for the timeline sanitizer.
//!
//! Every one of the eight hazard rules is exercised with at least one
//! hand-built trace that MUST be flagged, and the clean twins (plus real
//! executor sessions) MUST pass. This is the regression net that keeps
//! the checker honest in both directions: no missed hazards, no false
//! positives on well-synchronized schedules.

use dgnn_analysis::{audit, sanitize, BusyClaim, HazardRule, SanitizeOptions};
use dgnn_device::{
    AccessKind, DeviceTensor, Dispatcher, DurationNs, EventCategory, ExecMode, ExecTrace, Executor,
    KernelKind, Place, PlatformSpec, StreamId, Timeline, TimelineEvent, TraceRecord, TransferDir,
};
use dgnn_tensor::Tensor;

fn ns(n: u64) -> DurationNs {
    DurationNs::from_nanos(n)
}

fn kernel_event(start: u64, end: u64, stream: Option<StreamId>) -> TimelineEvent {
    TimelineEvent {
        label: "kernel",
        scope: String::new(),
        category: EventCategory::Kernel(KernelKind::Gemm),
        place: Place::Gpu,
        start: ns(start),
        end: ns(end),
        occupancy: 1.0,
        flops: 1,
        bytes: 0,
        stream,
        device: 0,
    }
}

fn transfer_event(dir: TransferDir, bytes: u64, stream: Option<StreamId>) -> TimelineEvent {
    TimelineEvent {
        label: "memcpy",
        scope: String::new(),
        category: EventCategory::Transfer(dir),
        place: Place::Pcie,
        start: ns(0),
        end: ns(10),
        occupancy: 1.0,
        flops: 0,
        bytes,
        stream,
        device: 0,
    }
}

// ---------------------------------------------------------------------
// RULE1 read-before-transfer
// ---------------------------------------------------------------------

#[test]
fn rule1_cross_lane_upload_without_wait_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Fork { at: ns(0) });
    trace.push(TraceRecord::Crossing {
        tensor: Some(1),
        dir: TransferDir::H2D,
        bytes: 128,
        lane: Some(StreamId::Copy),
        staged: false,
        at_event: 0,
    });
    // Compute reads the buffer with NO record/wait edge from Copy.
    trace.push(TraceRecord::Access {
        tensor: 1,
        kind: AccessKind::Arg,
        lane: Some(StreamId::Compute),
        place: Place::Gpu,
        at_event: 1,
    });
    trace.push(TraceRecord::Join {
        at: ns(20),
        lane_clocks: vec![ns(10), ns(10), ns(10)],
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ReadBeforeTransfer), 1, "{report}");
}

#[test]
fn rule1_read_of_never_uploaded_tensor_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Access {
        tensor: 9,
        kind: AccessKind::Arg,
        lane: None,
        place: Place::Gpu,
        at_event: 0,
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ReadBeforeTransfer), 1, "{report}");
}

#[test]
fn rule1_clean_twin_with_handoff_passes() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Fork { at: ns(0) });
    trace.push(TraceRecord::Crossing {
        tensor: Some(1),
        dir: TransferDir::H2D,
        bytes: 128,
        lane: Some(StreamId::Copy),
        staged: false,
        at_event: 0,
    });
    trace.push(TraceRecord::EventRecord {
        event: 0,
        lane: StreamId::Copy,
        at: ns(10),
    });
    trace.push(TraceRecord::EventWait {
        event: 0,
        lane: StreamId::Compute,
    });
    trace.push(TraceRecord::Access {
        tensor: 1,
        kind: AccessKind::Arg,
        lane: Some(StreamId::Compute),
        place: Place::Gpu,
        at_event: 1,
    });
    trace.push(TraceRecord::Join {
        at: ns(20),
        lane_clocks: vec![ns(10), ns(10), ns(15)],
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ReadBeforeTransfer), 0, "{report}");
    assert_eq!(report.count(HazardRule::MissingWait), 0, "{report}");
    assert_eq!(report.count(HazardRule::ClockMonotonicity), 0, "{report}");
}

// ---------------------------------------------------------------------
// RULE2 use-after-release
// ---------------------------------------------------------------------

#[test]
fn rule2_read_after_release_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Crossing {
        tensor: Some(3),
        dir: TransferDir::H2D,
        bytes: 64,
        lane: None,
        staged: false,
        at_event: 0,
    });
    trace.push(TraceRecord::Access {
        tensor: 3,
        kind: AccessKind::Arg,
        lane: None,
        place: Place::Gpu,
        at_event: 1,
    });
    trace.push(TraceRecord::Release {
        tensor: 3,
        lane: None,
        at_event: 2,
    });
    trace.push(TraceRecord::Access {
        tensor: 3,
        kind: AccessKind::Arg,
        lane: None,
        place: Place::Gpu,
        at_event: 3,
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::UseAfterRelease), 1, "{report}");
}

#[test]
fn rule2_read_after_download_is_flagged_but_reupload_heals() {
    let mut trace = ExecTrace::new();
    for (tensor, reupload) in [(4u64, false), (5u64, true)] {
        trace.push(TraceRecord::Crossing {
            tensor: Some(tensor),
            dir: TransferDir::H2D,
            bytes: 64,
            lane: None,
            staged: false,
            at_event: 0,
        });
        // The download pair: read half then the D2H crossing.
        trace.push(TraceRecord::Access {
            tensor,
            kind: AccessKind::Download,
            lane: None,
            place: Place::Gpu,
            at_event: 1,
        });
        trace.push(TraceRecord::Crossing {
            tensor: Some(tensor),
            dir: TransferDir::D2H,
            bytes: 64,
            lane: None,
            staged: false,
            at_event: 1,
        });
        if reupload {
            trace.push(TraceRecord::Crossing {
                tensor: Some(tensor),
                dir: TransferDir::H2D,
                bytes: 64,
                lane: None,
                staged: false,
                at_event: 2,
            });
        }
        trace.push(TraceRecord::Access {
            tensor,
            kind: AccessKind::Arg,
            lane: None,
            place: Place::Gpu,
            at_event: 3,
        });
    }
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    // Tensor 4 is flagged; tensor 5 was re-uploaded and is fine.
    assert_eq!(report.count(HazardRule::UseAfterRelease), 1, "{report}");
    let flagged = report
        .hazards
        .iter()
        .find(|h| h.rule == HazardRule::UseAfterRelease)
        .expect("one RULE2 hazard");
    assert_eq!(flagged.tensor, Some(4));
}

// ---------------------------------------------------------------------
// RULE3 missing-wait
// ---------------------------------------------------------------------

#[test]
fn rule3_cross_lane_write_racing_a_read_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Fork { at: ns(0) });
    // Compute defines and reads the buffer...
    trace.push(TraceRecord::Access {
        tensor: 6,
        kind: AccessKind::Adopt,
        lane: Some(StreamId::Compute),
        place: Place::Gpu,
        at_event: 0,
    });
    trace.push(TraceRecord::Access {
        tensor: 6,
        kind: AccessKind::Arg,
        lane: Some(StreamId::Compute),
        place: Place::Gpu,
        at_event: 1,
    });
    // ...while Copy releases it with no ordering edge.
    trace.push(TraceRecord::Release {
        tensor: 6,
        lane: Some(StreamId::Copy),
        at_event: 1,
    });
    trace.push(TraceRecord::Join {
        at: ns(20),
        lane_clocks: vec![ns(0), ns(10), ns(10)],
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::MissingWait), 1, "{report}");
}

#[test]
fn rule3_wait_on_unrecorded_event_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Fork { at: ns(0) });
    trace.push(TraceRecord::EventWait {
        event: 7,
        lane: StreamId::Compute,
    });
    trace.push(TraceRecord::Join {
        at: ns(1),
        lane_clocks: vec![ns(0), ns(0), ns(0)],
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::MissingWait), 1, "{report}");
}

#[test]
fn rule3_clean_twin_release_after_recorded_wait_passes() {
    // Same write/read pair as the race above, but Compute records an
    // event after its read and Copy waits on it before releasing: the
    // cross-lane edge orders the release after the read.
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Fork { at: ns(0) });
    trace.push(TraceRecord::Access {
        tensor: 6,
        kind: AccessKind::Adopt,
        lane: Some(StreamId::Compute),
        place: Place::Gpu,
        at_event: 0,
    });
    trace.push(TraceRecord::Access {
        tensor: 6,
        kind: AccessKind::Arg,
        lane: Some(StreamId::Compute),
        place: Place::Gpu,
        at_event: 1,
    });
    trace.push(TraceRecord::EventRecord {
        event: 0,
        lane: StreamId::Compute,
        at: ns(10),
    });
    trace.push(TraceRecord::EventWait {
        event: 0,
        lane: StreamId::Copy,
    });
    trace.push(TraceRecord::Release {
        tensor: 6,
        lane: Some(StreamId::Copy),
        at_event: 2,
    });
    trace.push(TraceRecord::Join {
        at: ns(20),
        lane_clocks: vec![ns(0), ns(15), ns(10)],
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert!(report.is_clean(), "{report}");
}

// ---------------------------------------------------------------------
// RULE4 clock monotonicity
// ---------------------------------------------------------------------

#[test]
fn rule4_join_below_lane_clock_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Fork { at: ns(0) });
    trace.push(TraceRecord::Join {
        at: ns(5),
        lane_clocks: vec![ns(10), ns(0), ns(0)],
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ClockMonotonicity), 1, "{report}");
}

#[test]
fn rule4_lane_clock_rewind_and_unjoined_fork_are_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Fork { at: ns(0) });
    trace.push(TraceRecord::EventRecord {
        event: 0,
        lane: StreamId::Copy,
        at: ns(10),
    });
    trace.push(TraceRecord::EventRecord {
        event: 1,
        lane: StreamId::Copy,
        at: ns(5), // rewinds the copy lane clock
    });
    // ...and the fork is never joined.
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ClockMonotonicity), 2, "{report}");
}

#[test]
fn rule4_overlapping_events_on_one_lane_are_flagged() {
    let mut tl = Timeline::new();
    tl.push(kernel_event(0, 40, Some(StreamId::Compute)));
    let mut bad = kernel_event(20, 60, Some(StreamId::Compute));
    bad.label = "overlapping";
    // Timeline::push debug-asserts end >= start, so build the overlap
    // via two well-formed but overlapping same-lane events.
    tl.push(bad);
    let report = sanitize(&tl, &ExecTrace::new(), &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ClockMonotonicity), 1, "{report}");
}

#[test]
fn rule4_overlap_across_lanes_is_legal() {
    let mut tl = Timeline::new();
    tl.push(kernel_event(0, 40, Some(StreamId::Compute)));
    tl.push(transfer_event(TransferDir::H2D, 64, Some(StreamId::Copy)));
    let report = sanitize(&tl, &ExecTrace::new(), &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ClockMonotonicity), 0, "{report}");
}

// ---------------------------------------------------------------------
// RULE5 byte conservation
// ---------------------------------------------------------------------

#[test]
fn rule5_staged_bytes_never_flushed_are_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Crossing {
        tensor: Some(8),
        dir: TransferDir::H2D,
        bytes: 256,
        lane: None,
        staged: true,
        at_event: 0,
    });
    // No Flush, no Priced: the staged bytes silently vanish.
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert!(report.count(HazardRule::ByteConservation) >= 1, "{report}");
}

#[test]
fn rule5_flush_exceeding_staged_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Crossing {
        tensor: Some(8),
        dir: TransferDir::H2D,
        bytes: 100,
        lane: None,
        staged: true,
        at_event: 0,
    });
    trace.push(TraceRecord::Flush {
        dir: TransferDir::H2D,
        bytes: 300, // flushes more than was ever staged
        lane: None,
        at_event: 0,
    });
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert!(report.count(HazardRule::ByteConservation) >= 1, "{report}");
}

#[test]
fn rule5_priced_record_mismatching_timeline_is_flagged() {
    let mut tl = Timeline::new();
    tl.push(transfer_event(TransferDir::H2D, 64, None));
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::Crossing {
        tensor: Some(2),
        dir: TransferDir::H2D,
        bytes: 64,
        lane: None,
        staged: false,
        at_event: 0,
    });
    trace.push(TraceRecord::Priced {
        dir: TransferDir::H2D,
        bytes: 999, // disagrees with the 64 B timeline event
        lane: None,
        event: 0,
    });
    let report = sanitize(&tl, &trace, &SanitizeOptions::default());
    assert!(report.count(HazardRule::ByteConservation) >= 1, "{report}");

    let mut dangling = ExecTrace::new();
    dangling.push(TraceRecord::Priced {
        dir: TransferDir::D2H,
        bytes: 64,
        lane: None,
        event: 17, // points past the timeline
    });
    let report = sanitize(&Timeline::new(), &dangling, &SanitizeOptions::default());
    assert!(report.count(HazardRule::ByteConservation) >= 1, "{report}");
}

#[test]
fn rule5_clean_staged_flush_price_cycle_passes() {
    let mut tl = Timeline::new();
    tl.push(transfer_event(TransferDir::H2D, 300, None));
    let mut trace = ExecTrace::new();
    for t in [1u64, 2, 3] {
        trace.push(TraceRecord::Crossing {
            tensor: Some(t),
            dir: TransferDir::H2D,
            bytes: 100,
            lane: None,
            staged: true,
            at_event: 0,
        });
    }
    trace.push(TraceRecord::Flush {
        dir: TransferDir::H2D,
        bytes: 300,
        lane: None,
        at_event: 0,
    });
    trace.push(TraceRecord::Priced {
        dir: TransferDir::H2D,
        bytes: 300,
        lane: None,
        event: 0,
    });
    let report = sanitize(&tl, &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::ByteConservation), 0, "{report}");
}

// ---------------------------------------------------------------------
// RULE6 busy-fraction consistency
// ---------------------------------------------------------------------

#[test]
fn rule6_per_event_sum_over_overlapping_kernels_is_flagged() {
    let mut tl = Timeline::new();
    // Three kernels overlapping on different lanes: union = [0, 60) minus
    // nothing = 60 ns busy over a 100 ns window → 0.6.
    tl.push(kernel_event(0, 40, Some(StreamId::Compute)));
    tl.push(kernel_event(20, 60, Some(StreamId::Host)));
    tl.push(kernel_event(50, 60, Some(StreamId::Copy)));
    let naive_sum = (40.0 + 40.0 + 10.0) / 100.0; // 0.9, double-counted
    let opts = SanitizeOptions {
        busy_claim: Some(BusyClaim {
            win_start: ns(0),
            win_end: ns(100),
            fraction: naive_sum,
        }),
        ..SanitizeOptions::default()
    };
    let report = sanitize(&tl, &ExecTrace::new(), &opts);
    assert_eq!(report.count(HazardRule::BusyFraction), 1, "{report}");

    let honest = SanitizeOptions {
        busy_claim: Some(BusyClaim {
            win_start: ns(0),
            win_end: ns(100),
            fraction: 0.6,
        }),
        ..SanitizeOptions::default()
    };
    let report = sanitize(&tl, &ExecTrace::new(), &honest);
    assert_eq!(report.count(HazardRule::BusyFraction), 0, "{report}");
}

#[test]
fn rule6_fraction_outside_unit_interval_is_flagged() {
    let opts = SanitizeOptions {
        busy_claim: Some(BusyClaim {
            win_start: ns(0),
            win_end: ns(100),
            fraction: 1.3,
        }),
        ..SanitizeOptions::default()
    };
    let report = sanitize(&Timeline::new(), &ExecTrace::new(), &opts);
    assert!(report.count(HazardRule::BusyFraction) >= 1, "{report}");
}

#[test]
fn rule6_clean_twin_union_fraction_passes() {
    // The same overlapping three-kernel timeline as the adversarial
    // case, but the claim uses the interval-union busy time (60 ns of
    // the 100 ns window) instead of the double-counted per-event sum.
    let mut tl = Timeline::new();
    tl.push(kernel_event(0, 40, Some(StreamId::Compute)));
    tl.push(kernel_event(20, 60, Some(StreamId::Host)));
    tl.push(kernel_event(50, 60, Some(StreamId::Copy)));
    let opts = SanitizeOptions {
        busy_claim: Some(BusyClaim {
            win_start: ns(0),
            win_end: ns(100),
            fraction: 0.6,
        }),
        ..SanitizeOptions::default()
    };
    let report = sanitize(&tl, &ExecTrace::new(), &opts);
    assert!(report.is_clean(), "{report}");
}

// ---------------------------------------------------------------------
// Known-good real sessions: the sanitizer must not cry wolf.
// ---------------------------------------------------------------------

#[test]
fn real_serial_gpu_session_is_clean() {
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    ex.enable_tracing();
    {
        let mut dx = Dispatcher::new(&mut ex);
        let a = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        let w = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        let h = dx.matmul("proj", &a, &w).expect("shapes agree");
        let out = dx.relu("act", &h);
        dx.download(&out);
        dx.release_tensor(&h);
    }
    let report = audit(&ex);
    assert!(report.is_clean(), "{report}");
    assert!(report.stats.tensors >= 3);
    assert!(report.stats.priced_bytes[0] > 0, "H2D was priced");
}

#[test]
fn real_forked_session_with_handoffs_is_clean() {
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    ex.enable_tracing();
    {
        let mut dx = Dispatcher::new(&mut ex);
        let a = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        let w = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        dx.fork_streams();
        // Copy lane uploads both operands.
        dx.on_stream(StreamId::Copy, |dx| {
            dx.ensure_resident(&a);
            dx.ensure_resident(&w);
        });
        let uploaded = dx.record_event(StreamId::Copy);
        // Compute lane waits for the copies, then runs the kernels.
        dx.wait_event(StreamId::Compute, uploaded);
        let out = dx.on_stream(StreamId::Compute, |dx| {
            let h = dx.matmul("proj", &a, &w).expect("shapes agree");
            dx.relu("act", &h)
        });
        let computed = dx.record_event(StreamId::Compute);
        // Copy lane waits for the kernels, then drains the result.
        dx.wait_event(StreamId::Copy, computed);
        dx.on_stream(StreamId::Copy, |dx| dx.download(&out));
        dx.join_streams();
    }
    let report = audit(&ex);
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.stats.forks, 1);
}

#[test]
fn real_coalesced_session_is_clean_once_flushed() {
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    ex.enable_tracing();
    {
        let mut dx = Dispatcher::with_coalescing(&mut ex, true);
        let a = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        let w = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        dx.ensure_resident(&a);
        dx.ensure_resident(&w);
        dx.flush_transfers();
        let h = dx.matmul("proj", &a, &w).expect("shapes agree");
        dx.download(&h);
        dx.flush_transfers();
    }
    let report = audit(&ex);
    assert!(report.is_clean(), "{report}");
    assert!(report.stats.crossings >= 3);
}

#[test]
fn real_cpu_only_session_is_clean() {
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::CpuOnly);
    ex.enable_tracing();
    {
        let mut dx = Dispatcher::new(&mut ex);
        let a = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        let w = DeviceTensor::host(Tensor::zeros(&[8, 8]));
        let h = dx.matmul("proj", &a, &w).expect("shapes agree");
        dx.download(&h);
    }
    let report = audit(&ex);
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.stats.priced_bytes, [0, 0], "CPU mode prices no PCIe");
}

#[test]
fn audit_panics_without_tracing() {
    let ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    let result = std::panic::catch_unwind(|| audit(&ex));
    assert!(result.is_err(), "audit must refuse an untraced executor");
}

// ---------------------------------------------------------------------
// RULE7 sample-after-append
// ---------------------------------------------------------------------

fn graph_append(store: u64, event: usize, time: f64, visible_at: u64) -> TraceRecord {
    TraceRecord::GraphAppend {
        store,
        event,
        time_bits: time.to_bits(),
        visible_at: ns(visible_at),
        lane: None,
        at_event: 0,
    }
}

fn graph_sample(store: u64, visible: usize, at: u64) -> TraceRecord {
    TraceRecord::GraphSample {
        store,
        visible,
        at: ns(at),
        lane: None,
        at_event: 0,
    }
}

#[test]
fn rule7_sample_before_append_completes_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(graph_append(7, 0, 1.0, 100));
    trace.push(graph_append(7, 1, 2.0, 250));
    // The snapshot exposes both events, but the second append's ingest
    // work only completes at 250 ns — reading at 120 ns races it.
    trace.push(graph_sample(7, 2, 120));
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::SampleAfterAppend), 1, "{report}");
    assert_eq!(report.stats.graph_appends, 2);
    assert_eq!(report.stats.graph_samples, 1);
}

#[test]
fn rule7_clean_twin_sample_after_visibility_passes() {
    let mut trace = ExecTrace::new();
    trace.push(graph_append(7, 0, 1.0, 100));
    trace.push(graph_append(7, 1, 2.0, 250));
    // Same schedule, but the read starts once the prefix is visible —
    // and an earlier read that caps its prefix at the visible watermark.
    trace.push(graph_sample(7, 1, 120));
    trace.push(graph_sample(7, 2, 250));
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.stats.graph_samples, 2);
}

#[test]
fn rule7_sample_beyond_appended_region_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(graph_append(3, 0, 1.0, 10));
    // Claims to read 2 events; only 1 was ever appended.
    trace.push(graph_sample(3, 2, 500));
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::SampleAfterAppend), 1, "{report}");
}

#[test]
fn rule7_watermark_regression_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(graph_append(9, 0, 5.0, 10));
    // Timestamp moves backwards: the ingest watermark regressed.
    trace.push(graph_append(9, 1, 4.0, 20));
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::SampleAfterAppend), 1, "{report}");
}

#[test]
fn rule7_visibility_regression_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(graph_append(11, 0, 1.0, 300));
    // A later append claims to become visible before an earlier one.
    trace.push(graph_append(11, 1, 2.0, 200));
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::SampleAfterAppend), 1, "{report}");
}

#[test]
fn rule7_out_of_order_append_index_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(graph_append(13, 0, 1.0, 10));
    // Event index 2 arrives while only 1 append was logged — a gap.
    trace.push(graph_append(13, 2, 2.0, 20));
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::SampleAfterAppend), 1, "{report}");
}

#[test]
fn rule7_stores_are_tracked_independently() {
    let mut trace = ExecTrace::new();
    trace.push(graph_append(1, 0, 1.0, 100));
    trace.push(graph_append(2, 0, 1.0, 900));
    // Store 1's event is visible at 100 ns; store 2's only at 900 ns.
    trace.push(graph_sample(1, 1, 150));
    trace.push(graph_sample(2, 1, 150));
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::SampleAfterAppend), 1, "{report}");
}

// ---------------------------------------------------------------------
// RULE8 peer conservation
// ---------------------------------------------------------------------

#[test]
fn rule8_unpriced_peer_crossing_is_flagged() {
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::DeviceSwitch { device: 1 });
    trace.push(TraceRecord::PeerCrossing {
        src: 0,
        dst: 1,
        bytes: 2048,
        lane: None,
        at_event: 0,
    });
    // No PeerPriced twin: the fetch intent escaped interconnect pricing.
    let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::PeerConservation), 1, "{report}");
}

#[test]
fn rule8_phantom_peer_pricing_is_flagged() {
    let mut tl = Timeline::new();
    tl.push(TimelineEvent {
        label: "peer_copy",
        scope: String::new(),
        category: EventCategory::PeerTransfer,
        place: Place::Pcie,
        start: ns(0),
        end: ns(10),
        occupancy: 1.0,
        flops: 0,
        bytes: 2048,
        stream: None,
        device: 1,
    });
    let mut trace = ExecTrace::new();
    trace.push(TraceRecord::DeviceSwitch { device: 1 });
    // Interconnect traffic priced with no crossing intent behind it.
    trace.push(TraceRecord::PeerPriced {
        src: 0,
        dst: 1,
        bytes: 2048,
        via_host: false,
        lane: None,
        event: 0,
    });
    let report = sanitize(&tl, &trace, &SanitizeOptions::default());
    assert_eq!(report.count(HazardRule::PeerConservation), 1, "{report}");
}

#[test]
fn rule8_real_multi_gpu_session_is_clean() {
    let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
    ex.enable_tracing();
    ex.ensure_context();
    {
        let mut dx = Dispatcher::new(&mut ex);
        let x = dx.adopt(Tensor::ones(&[8, 8]), 1.0);
        dx.fork_streams_multi(2);
        dx.on_device(1, |dx| {
            // Shard 1 fetches remote rows from shard 0, then computes.
            dx.peer_transfer(0, 1 << 16);
            dx.on_stream(StreamId::Compute, |dx| {
                dx.matmul("mm", &x, &Tensor::eye(8)).unwrap();
            });
        });
        dx.join_streams();
    }
    let report = audit(&ex);
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.stats.peer_crossings, 1);
    assert_eq!(report.stats.peer_bytes, 1 << 16);
}

#[test]
fn rule8_host_staged_bounce_on_pcie_topology_is_clean() {
    let mut ex = Executor::new(PlatformSpec::multi_gpu_pcie(2), ExecMode::Gpu);
    ex.enable_tracing();
    ex.ensure_context();
    {
        let mut dx = Dispatcher::new(&mut ex);
        dx.on_device(1, |dx| {
            dx.peer_transfer(0, 4096);
        });
    }
    let report = audit(&ex);
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.stats.peer_bytes, 4096);
}

#[test]
fn rule7_real_executor_ingest_session_is_clean() {
    use dgnn_device::HostWork;

    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    ex.enable_tracing();
    // Priced ingest loop: each append is Host-lane work; the event
    // becomes visible when that work completes on the session clock.
    for i in 0..4usize {
        ex.host(HostWork {
            label: "graph_append",
            ops: 8,
            seq_bytes: 64,
            irregular_bytes: 128,
            parallelism: 1,
        });
        ex.trace_graph_append(1, i, (i as f64).to_bits(), ex.now());
    }
    // A sample issued after all appends completed reads the full prefix.
    ex.trace_graph_sample(1, 4, ex.now());
    let report = audit(&ex);
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.stats.graph_appends, 4);
    assert_eq!(report.stats.graph_samples, 1);
}
