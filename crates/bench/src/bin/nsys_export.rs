//! Exports a model run's simulated timeline as a Chrome-trace JSON —
//! the artifact-appendix equivalent of the paper's Nsight `.nsys-rep`
//! files. Open the output in `chrome://tracing` or Perfetto.
//!
//! Usage: `nsys_export [--scale ...] [--model tgat] [--out trace.json]`

use std::fs;

use dgnn_bench::{build_model, default_config, flag_value, measure, parse_opts};
use dgnn_device::ExecMode;
use dgnn_profile::{chrome_trace, render_kernel_summary};

fn main() {
    let opts = parse_opts();
    let model_name = flag_value(&opts.rest, "--model").unwrap_or("tgat");
    let out_path = flag_value(&opts.rest, "--out").unwrap_or("trace.json");

    let mut model = build_model(model_name, opts.scale, opts.seed);
    let run = measure(model.as_mut(), ExecMode::Gpu, &default_config(model_name));

    let json = chrome_trace(&run.executor);
    fs::write(out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "wrote {out_path}: {} events, {} scopes, {} bytes",
        run.executor.timeline().len(),
        run.executor.scopes().len(),
        json.len()
    );
    print!(
        "{}",
        render_kernel_summary(
            run.executor.timeline(),
            &format!("{model_name} — CUDA kernel summary (Nsight-style)"),
            12,
        )
    );
}
