//! Tensor operations, grouped by kernel family.
//!
//! Each family maps onto a simulated-kernel category in `dgnn-device`:
//! GEMM ([`matmul`]), element-wise ([`elementwise`], [`activation`]),
//! reductions/softmax ([`reduce`]) and data-manipulation / gather-scatter
//! ([`manip`]). The functions here compute real values; the device layer
//! prices them.

pub mod activation;
pub mod elementwise;
pub mod manip;
pub mod matmul;
pub mod reduce;
