//! TGN — Temporal Graph Networks (Rossi et al., 2020).
//!
//! Continuous-time model with a per-node **memory** table. Each batch:
//! 1. packs the batch's interactions on the CPU and ships edge features
//!    and timestamps to the GPU,
//! 2. samples recent temporal neighbors (CPU),
//! 3. **message passing**: fetches the memory rows of every touched node
//!    (sources, destinations, neighbors) — the frequent CPU↔GPU memory
//!    exchange of Fig 5(b) — and computes messages,
//! 4. updates memory with a GRU, computes embeddings with attention,
//! 5. writes updated memory rows back to the CPU side.
//!
//! Message passing's transfer volume makes it dominate at large batch
//! sizes (79% at 64k in Fig 7a) and drives GPU utilization *down* as
//! batch size grows (Fig 6c). All kernels route through the
//! [`Dispatcher`]; the memory exchange is expressed as staged
//! [`DeviceTensor`]s whose residence crossings *are* the transfers.
//!
//! Under streaming serving the same per-node memory also advances on the
//! ingest path — see [`crate::IngestMemory`] with
//! [`crate::MemoryRule::TgnGru`], the serving-side twin of this model's
//! GRU update, priced as Host-lane work so ingestion contends with
//! query sampling.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{
    DeviceTensor, Dispatcher, ExecMode, Executor, HostWork, StreamId, TensorClass, TransferDir,
};
use dgnn_graph::{NeighborSampler, SampleStrategy, TemporalAdjacency};
use dgnn_nn::{EmbeddingTable, GruCell, Linear, Module, MultiHeadAttention, Time2Vec};
use dgnn_tensor::{OpDescriptor, Tensor, TensorRng};

use crate::common::{
    lane_handoff, on_lane, representative, shard_barrier, shard_owners, DgnnModel, DoubleBuffer,
    InferenceConfig, RunSummary,
};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per event for batch packing (vectorized numpy-style
/// preprocessing — cheap per element).
const PREP_CALL_OPS: u64 = 30;
/// Framework ops per event for vectorized temporal sampling (much
/// cheaper than TGAT's per-node Python bisect loop).
const SAMPLE_CALL_OPS: u64 = 120;

/// TGN hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgnConfig {
    /// Memory/embedding dimension.
    pub dim: usize,
    /// Time-embedding dimension.
    pub time_dim: usize,
    /// Attention heads in the embedding module.
    pub heads: usize,
}

impl Default for TgnConfig {
    fn default() -> Self {
        TgnConfig {
            dim: 172,
            time_dim: 100,
            heads: 2,
        }
    }
}

/// The TGN model bound to a dataset.
#[derive(Debug)]
pub struct Tgn {
    data: TemporalDataset,
    adj: TemporalAdjacency,
    cfg: TgnConfig,
    memory: EmbeddingTable,
    message_fn: Linear,
    memory_updater: GruCell,
    embed_attn: MultiHeadAttention,
    time_enc: Time2Vec,
    predictor: Linear,
}

impl Tgn {
    /// Builds TGN over an interaction dataset.
    pub fn new(data: TemporalDataset, cfg: TgnConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let adj = TemporalAdjacency::from_stream(&data.stream);
        let d = cfg.dim;
        let msg_in = 2 * d + data.edge_dim() + cfg.time_dim;
        Tgn {
            adj,
            memory: EmbeddingTable::new(data.stream.n_nodes(), d, &mut rng),
            message_fn: Linear::new(msg_in, d, &mut rng),
            memory_updater: GruCell::new(d, d, &mut rng),
            embed_attn: MultiHeadAttention::new(d, cfg.heads, &mut rng),
            time_enc: Time2Vec::new(cfg.time_dim, &mut rng),
            predictor: Linear::new(2 * d, 1, &mut rng),
            data,
            cfg,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![
            &self.memory,
            &self.message_fn,
            &self.memory_updater,
            &self.embed_attn,
            &self.time_enc,
            &self.predictor,
        ]
    }

    /// Memory rows touched per batch: two endpoints plus sampled
    /// neighbors per event.
    fn touched_rows(&self, batch: usize, k: usize) -> u64 {
        (batch * (2 + k)) as u64
    }

    /// Sharded multi-GPU driver: events belong to the shard that owns
    /// their source node (contiguous node ranges, so per-shard memory
    /// stays a dense slice), each shard's slice runs on its own device's
    /// lane triple, and the memory rows of remote destination endpoints
    /// and sampled neighbors arrive as peer transfers priced on the
    /// interconnect edge to their owner (NVLink hop, or a host-staged
    /// PCIe bounce when the topology has no direct link).
    fn infer_sharded(
        &mut self,
        ex: &mut Executor,
        cfg: &InferenceConfig,
        shards: usize,
    ) -> Result<RunSummary> {
        let k = cfg.n_neighbors.clamp(1, 10);
        let d = self.cfg.dim;
        let row_bytes = (2 * d * 4) as u64;
        let sampler = NeighborSampler::new(SampleStrategy::MostRecent, cfg.seed);
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let n_nodes = self.data.stream.n_nodes();
        let owners = shard_owners(&dgnn_graph::contiguous_ranges(n_nodes, shards), n_nodes);

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let cached = cfg.feature_cache.is_some();
        cfg.apply_device_options(ex);

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced());
            dx.fork_streams_multi(shards);
            for batch in &batches {
                let mut slices: Vec<Vec<&dgnn_graph::TemporalEvent>> = vec![Vec::new(); shards];
                for e in batch {
                    slices[owners[e.src]].push(e);
                }
                // Fixed shard order: the checksum and the shared memory
                // table update deterministically.
                for (s, slice) in slices.iter().enumerate() {
                    let shard: Result<()> = dx.on_device(s, |dx| {
                        let bsz = slice.len();
                        if bsz == 0 {
                            return Ok(());
                        }
                        let rep = representative(bsz);
                        let scale = bsz as f64 / rep as f64;

                        // 1. Shard-local batch packing on this device's
                        // host lane.
                        dx.on_stream(StreamId::Host, |dx| {
                            dx.scope("batch_prep", |dx| {
                                dx.host(HostWork::sequential(
                                    "pack_batch",
                                    bsz as u64 * PREP_CALL_OPS,
                                    bsz as u64 * dgnn_graph::EventStream::EVENT_BYTES,
                                ));
                            })
                        });

                        // 2. Temporal sampling over the shard's roots.
                        let rep_neighbors = dx.on_stream(StreamId::Host, |dx| {
                            dx.scope("sampling", |dx| {
                                let roots: Vec<(usize, f64)> =
                                    slice.iter().take(rep).map(|e| (e.src, e.time)).collect();
                                let (rep_samples, cost) =
                                    sampler.sample_batch(&self.adj, &roots, k);
                                let sc = (bsz as u64).div_ceil(rep as u64);
                                let parallelism =
                                    if cfg.parallel_sampling { bsz as u64 } else { 1 };
                                dx.host(HostWork {
                                    label: "temporal_sampling",
                                    ops: cost.ops * sc / 4 + (bsz * 2) as u64 * SAMPLE_CALL_OPS,
                                    seq_bytes: 0,
                                    irregular_bytes: cost.irregular_bytes * sc / 4,
                                    parallelism,
                                });
                                rep_samples
                            })
                        });

                        // Remote memory rows by owning device: destination
                        // endpoints outside this shard's range, plus the
                        // cross-shard fraction of sampled neighbors
                        // (counted on the representative sample, scaled to
                        // the shard's logical neighbor volume).
                        let mut remote_dst = vec![0u64; shards];
                        for e in slice {
                            if owners[e.dst] != s {
                                remote_dst[owners[e.dst]] += 1;
                            }
                        }
                        let mut nbr_counts = vec![0u64; shards];
                        let mut rep_nbr_total = 0u64;
                        for l in &rep_neighbors {
                            for nb in l {
                                nbr_counts[owners[nb.node]] += 1;
                                rep_nbr_total += 1;
                            }
                        }
                        let logical_nbrs = (bsz * k) as u64;
                        let scaled_nbr = |o: usize| {
                            (nbr_counts[o] * logical_nbrs)
                                .checked_div(rep_nbr_total)
                                .unwrap_or(0)
                        };
                        let local_dst = bsz as u64 - remote_dst.iter().sum::<u64>();

                        // 3. Shard-local H2D over this device's PCIe link;
                        // remote rows as interconnect peer traffic.
                        lane_handoff(dx, true, StreamId::Host, StreamId::Copy);
                        dx.on_stream(StreamId::Copy, |dx| {
                            dx.scope("memcpy_h2d", |dx| {
                                let edge_bytes = (bsz * self.data.edge_dim() * 4) as u64;
                                let ts_bytes = (bsz * 2 * 4) as u64;
                                if cached {
                                    dx.transfer(TransferDir::H2D, edge_bytes);
                                    dx.transfer(TransferDir::H2D, ts_bytes);
                                    // Shard-local rows route through this
                                    // device's cache shard.
                                    let mut keys: Vec<u64> =
                                        slice.iter().map(|e| e.src as u64).collect();
                                    keys.extend(
                                        slice
                                            .iter()
                                            .filter(|e| owners[e.dst] == s)
                                            .map(|e| e.dst as u64),
                                    );
                                    dx.fetch_rows(TensorClass::NodeMemory, &keys, row_bytes, 1.0);
                                    let local_keys: Vec<u64> = rep_neighbors
                                        .iter()
                                        .flat_map(|l| l.iter())
                                        .filter(|nb| owners[nb.node] == s)
                                        .map(|nb| nb.node as u64)
                                        .collect();
                                    if !local_keys.is_empty() {
                                        let nscale = scaled_nbr(s) as f64 / local_keys.len() as f64;
                                        dx.fetch_rows(
                                            TensorClass::NodeMemory,
                                            &local_keys,
                                            row_bytes,
                                            nscale,
                                        );
                                    }
                                } else {
                                    for bytes in [
                                        edge_bytes,
                                        ts_bytes,
                                        bsz as u64 * row_bytes,
                                        local_dst * row_bytes,
                                        scaled_nbr(s) * row_bytes,
                                    ] {
                                        dx.transfer(TransferDir::H2D, bytes);
                                    }
                                }
                                for (o, &dst_rows) in remote_dst.iter().enumerate() {
                                    if o == s {
                                        continue;
                                    }
                                    let rows = dst_rows + scaled_nbr(o);
                                    if rows > 0 {
                                        dx.peer_transfer(o, rows * row_bytes);
                                    }
                                }
                                dx.flush_transfers();
                            })
                        });
                        lane_handoff(dx, true, StreamId::Host, StreamId::Compute);
                        lane_handoff(dx, true, StreamId::Copy, StreamId::Compute);

                        let rep_src: Vec<usize> = slice.iter().take(rep).map(|e| e.src).collect();

                        // 4. Message passing, memory update, embedding and
                        // prediction on this device's compute lane — the
                        // same representative math as the single-device
                        // driver at shard scale.
                        let rep_msgs = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("message_passing", |dx| -> Result<DeviceTensor> {
                                let src_mem = self.memory.lookup_scaled(dx, &rep_src, scale)?;
                                let dst: Vec<usize> =
                                    slice.iter().take(rep).map(|e| e.dst).collect();
                                let dst_mem = self.memory.lookup_scaled(dx, &dst, scale)?;
                                let feats: Vec<usize> =
                                    slice.iter().take(rep).map(|e| e.feature_idx).collect();
                                let edge = self.data.edge_features.gather_rows(&feats)?;
                                #[expect(
                                    clippy::cast_possible_truncation,
                                    reason = "f32 timestamps"
                                )]
                                let deltas = Tensor::from_vec(
                                    slice.iter().take(rep).map(|e| e.time as f32).collect(),
                                    &[rep],
                                )?;
                                let deltas = dx.adopt(deltas, scale);
                                let time = self.time_enc.forward(dx, &deltas)?;
                                let raw = src_mem
                                    .data()
                                    .concat_cols(dst_mem.data())?
                                    .concat_cols(&edge)?
                                    .concat_cols(time.data())?;
                                let raw = dx.adopt(raw, scale);
                                let msgs = self.message_fn.forward(dx, &raw)?;
                                dx.charge(OpDescriptor::reduce("message_agg", bsz, k.max(1)), 1.0);
                                Ok(msgs)
                            })
                        })?;
                        let new_mem = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("memory_update", |dx| -> Result<DeviceTensor> {
                                let prev = self.memory.lookup_scaled(dx, &rep_src, scale)?;
                                self.memory_updater
                                    .forward(dx, &rep_msgs, &prev)
                                    .map_err(Into::into)
                            })
                        })?;
                        dx.on_stream(StreamId::Compute, |dx| {
                            self.memory.update(dx, &rep_src, &new_mem)
                        })?;
                        let emb = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("embedding", |dx| -> Result<DeviceTensor> {
                                let kv_ids: Vec<usize> = rep_neighbors
                                    .first()
                                    .map(|l| l.iter().map(|n| n.node).collect::<Vec<_>>())
                                    .unwrap_or_default()
                                    .into_iter()
                                    .chain(rep_src.first().copied())
                                    .collect();
                                let kv = self.memory.lookup_scaled(dx, &kv_ids, bsz as f64)?;
                                self.embed_attn
                                    .forward(dx, &new_mem, &kv, &kv)
                                    .map_err(Into::into)
                            })
                        })?;
                        dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("prediction", |dx| -> Result<()> {
                                let pair = dx.adopt(emb.data().concat_cols(emb.data())?, scale);
                                checksum += self.predictor.forward(dx, &pair)?.data().sum();
                                Ok(())
                            })
                        })?;

                        // 5. Memory write-back: the shard's updated
                        // endpoint and neighbor message blocks return to
                        // the host over its own PCIe link.
                        lane_handoff(dx, true, StreamId::Compute, StreamId::Copy);
                        dx.on_stream(StreamId::Copy, |dx| {
                            dx.scope("memcpy_d2h", |dx| {
                                dx.transfer(TransferDir::D2H, (bsz * 2 * d * 4) as u64);
                                dx.transfer(TransferDir::D2H, (bsz * k * d * 4) as u64);
                                dx.flush_transfers();
                            })
                        });
                        Ok(())
                    });
                    shard?;
                }
                shard_barrier(&mut dx, shards);
                iterations += 1;
            }
            dx.join_streams();
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

impl DgnnModel for Tgn {
    fn name(&self) -> &'static str {
        "tgn"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "tgn")
            .expect("tgn registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        // TGN stages memory rows through reused pinned buffers; only the
        // per-batch output embeddings are freshly allocated, which keeps
        // its per-batch warm-up nearly flat (Table 2).
        (cfg.batch_size * self.cfg.dim * 4 * 2) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let shards = cfg.effective_shards(ex);
        if shards > 1 {
            return self.infer_sharded(ex, cfg, shards);
        }
        let k = cfg.n_neighbors.clamp(1, 10);
        let d = self.cfg.dim;
        let sampler = NeighborSampler::new(SampleStrategy::MostRecent, cfg.seed);
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let gpu = ex.mode() == ExecMode::Gpu;
        let overlap = cfg.pipeline_overlap && gpu;
        let granular = cfg.granular_transfers() && gpu;
        let cached = cfg.feature_cache.is_some() && gpu;
        cfg.apply_device_options(ex);

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced() && gpu);
            if overlap {
                dx.fork_streams();
            }
            let mut staging = DoubleBuffer::new();
            for (i, batch) in batches.iter().enumerate() {
                let bsz = batch.len();
                let rep = representative(bsz);
                let scale = bsz as f64 / rep as f64;
                let touched = self.touched_rows(bsz, k);
                // Per-tensor decomposition of the batch's PCIe traffic
                // (sums exactly to the staged aggregates): edge features,
                // timestamps, then src/dst/neighbor memory-row blocks up;
                // endpoint and neighbor message/memory blocks down.
                let h2d_pieces = [
                    (bsz * self.data.edge_dim() * 4) as u64,
                    (bsz * 2 * 4) as u64,
                    (bsz * 2 * d * 4) as u64,
                    (bsz * 2 * d * 4) as u64,
                    (bsz * k * 2 * d * 4) as u64,
                ];
                let d2h_pieces = [(bsz * 2 * d * 4) as u64, (bsz * k * d * 4) as u64];

                // 1. Batch preparation (host lane) + edge features to GPU.
                staging.acquire(&mut dx, overlap, i, StreamId::Host);
                on_lane(&mut dx, overlap, StreamId::Host, |dx| {
                    dx.scope("batch_prep", |dx| {
                        dx.host(HostWork::sequential(
                            "pack_batch",
                            bsz as u64 * PREP_CALL_OPS,
                            bsz as u64 * dgnn_graph::EventStream::EVENT_BYTES,
                        ));
                    })
                });
                if !granular {
                    // Staged aggregate: the edge payload ships as soon as
                    // packing finishes.
                    let edge_payload = DeviceTensor::host_scaled(
                        Tensor::zeros(&[1, self.data.edge_dim() + 2]),
                        bsz as f64,
                    );
                    lane_handoff(&mut dx, overlap, StreamId::Host, StreamId::Copy);
                    on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                        dx.scope("memcpy_h2d", |dx| dx.ensure_resident(&edge_payload))
                    });
                    staging.uploaded(&mut dx, overlap);
                }

                // 2. Temporal neighbor sampling on the CPU — the CSR
                // batch engine, one root per batch event.
                let rep_neighbors = on_lane(&mut dx, overlap, StreamId::Host, |dx| {
                    dx.scope("sampling", |dx| {
                        let roots: Vec<(usize, f64)> =
                            batch.iter().take(rep).map(|e| (e.src, e.time)).collect();
                        let (rep_samples, cost) = sampler.sample_batch(&self.adj, &roots, k);
                        let s = (bsz as u64).div_ceil(rep as u64);
                        let parallelism = if cfg.parallel_sampling { bsz as u64 } else { 1 };
                        dx.host(HostWork {
                            label: "temporal_sampling",
                            ops: cost.ops * s / 4 + (bsz * 2) as u64 * SAMPLE_CALL_OPS,
                            seq_bytes: 0,
                            irregular_bytes: cost.irregular_bytes * s / 4,
                            parallelism,
                        });
                        rep_samples
                    })
                });

                if granular || cached {
                    // Per-tensor granularity: once sampling has named the
                    // touched memory rows, every upload of the batch is
                    // issued back-to-back — individually priced copies, or
                    // one merged transaction when coalescing. With the
                    // feature cache the memory-row blocks instead route
                    // through the device-resident cache: endpoint rows are
                    // keyed exactly (every batch event's src and dst) and
                    // the neighbor block by the sampled ids at batch scale,
                    // so recurrent nodes skip the Fig 5(b) exchange.
                    lane_handoff(&mut dx, overlap, StreamId::Host, StreamId::Copy);
                    on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                        dx.scope("memcpy_h2d", |dx| {
                            if cached {
                                if granular {
                                    // Edge features + timestamps were not
                                    // shipped by the staged early upload.
                                    dx.transfer(TransferDir::H2D, h2d_pieces[0]);
                                    dx.transfer(TransferDir::H2D, h2d_pieces[1]);
                                }
                                let row = (2 * d * 4) as u64;
                                let mut keys: Vec<u64> = Vec::with_capacity(2 * bsz);
                                keys.extend(batch.iter().map(|e| e.src as u64));
                                keys.extend(batch.iter().map(|e| e.dst as u64));
                                dx.fetch_rows(TensorClass::NodeMemory, &keys, row, 1.0);
                                let nbr: Vec<u64> = rep_neighbors
                                    .iter()
                                    .flat_map(|l| l.iter().map(|n| n.node as u64))
                                    .collect();
                                if !nbr.is_empty() {
                                    let nscale = (bsz * k) as f64 / nbr.len() as f64;
                                    dx.fetch_rows(TensorClass::NodeMemory, &nbr, row, nscale);
                                }
                                dx.flush_transfers();
                            } else {
                                for bytes in h2d_pieces {
                                    dx.transfer(TransferDir::H2D, bytes);
                                }
                                dx.flush_transfers();
                            }
                        })
                    });
                    if granular {
                        staging.uploaded(&mut dx, overlap);
                    }
                }
                lane_handoff(&mut dx, overlap, StreamId::Host, StreamId::Compute);
                lane_handoff(&mut dx, overlap, StreamId::Copy, StreamId::Compute);

                let rep_src: Vec<usize> = batch.iter().take(rep).map(|e| e.src).collect();

                // 3. Message passing: memory exchange + message kernels.
                let rep_msgs = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("message_passing", |dx| -> Result<DeviceTensor> {
                        // The memory rows of every touched node cross PCIe
                        // both ways — the Fig 5(b) exchange, derived from the
                        // residence of the staged row blocks. In granular
                        // modes the inbound rows were priced with the batch
                        // upload; the outbound staged messages are priced as
                        // their endpoint and neighbor blocks.
                        if granular {
                            for bytes in d2h_pieces {
                                dx.transfer(TransferDir::D2H, bytes);
                            }
                        } else {
                            if !cached {
                                // With the cache on, the inbound rows were
                                // already fetched (hits) or priced (misses)
                                // in memcpy_h2d; only the outbound staged
                                // messages still cross.
                                let mem_in = DeviceTensor::host_scaled(
                                    Tensor::zeros(&[rep, 2 * d]),
                                    touched as f64 / rep as f64,
                                );
                                dx.ensure_resident(&mem_in);
                            }
                            let staged_out =
                                dx.adopt(Tensor::zeros(&[rep, d]), touched as f64 / rep as f64);
                            dx.download(&staged_out);
                        }

                        let src_mem = self.memory.lookup_scaled(dx, &rep_src, scale)?;
                        let dst: Vec<usize> = batch.iter().take(rep).map(|e| e.dst).collect();
                        let dst_mem = self.memory.lookup_scaled(dx, &dst, scale)?;
                        let feats: Vec<usize> =
                            batch.iter().take(rep).map(|e| e.feature_idx).collect();
                        let edge = self.data.edge_features.gather_rows(&feats)?;
                        #[expect(
                            clippy::cast_possible_truncation,
                            reason = "f32 timestamps suffice"
                        )]
                        let deltas = Tensor::from_vec(
                            batch.iter().take(rep).map(|e| e.time as f32).collect(),
                            &[rep],
                        )?;
                        let deltas = dx.adopt(deltas, scale);
                        let time = self.time_enc.forward(dx, &deltas)?;
                        let raw = src_mem
                            .data()
                            .concat_cols(dst_mem.data())?
                            .concat_cols(&edge)?
                            .concat_cols(time.data())?;
                        let raw = dx.adopt(raw, scale);
                        let msgs = self.message_fn.forward(dx, &raw)?;
                        // Per-node aggregation of messages has no dense
                        // functional counterpart; charge the reduce directly.
                        dx.charge(OpDescriptor::reduce("message_agg", bsz, k.max(1)), 1.0);
                        Ok(msgs)
                    })
                })?;

                // 4. Memory update (GRU) + embedding (attention).
                let new_mem = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("memory_update", |dx| -> Result<DeviceTensor> {
                        let prev = self.memory.lookup_scaled(dx, &rep_src, scale)?;
                        self.memory_updater
                            .forward(dx, &rep_msgs, &prev)
                            .map_err(Into::into)
                    })
                })?;
                on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    self.memory.update(dx, &rep_src, &new_mem)
                })?;

                let emb = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("embedding", |dx| -> Result<DeviceTensor> {
                        // Keys/values: one event's sampled neighbors plus its
                        // source, standing in for the full batch (scale bsz);
                        // the queries are the rep updated-memory rows.
                        let kv_ids: Vec<usize> = rep_neighbors
                            .first()
                            .map(|s| s.iter().map(|n| n.node).collect::<Vec<_>>())
                            .unwrap_or_default()
                            .into_iter()
                            .chain(rep_src.first().copied())
                            .collect();
                        let kv = self.memory.lookup_scaled(dx, &kv_ids, bsz as f64)?;
                        self.embed_attn
                            .forward(dx, &new_mem, &kv, &kv)
                            .map_err(Into::into)
                    })
                })?;

                // 5. Prediction + memory write-back.
                on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("prediction", |dx| -> Result<()> {
                        let pair = dx.adopt(emb.data().concat_cols(emb.data())?, scale);
                        checksum += self.predictor.forward(dx, &pair)?.data().sum();
                        Ok(())
                    })
                })?;
                let writeback = dx.adopt(Tensor::zeros(&[rep, d]), touched as f64 / rep as f64);
                lane_handoff(&mut dx, overlap, StreamId::Compute, StreamId::Copy);
                on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                    dx.scope("memcpy_d2h", |dx| {
                        if granular {
                            for bytes in d2h_pieces {
                                dx.transfer(TransferDir::D2H, bytes);
                            }
                        } else {
                            dx.download(&writeback);
                        }
                        // Prices the batch's merged copy under coalescing;
                        // no-op otherwise.
                        dx.flush_transfers();
                    })
                });
                iterations += 1;
            }
            if overlap {
                dx.join_streams();
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{wikipedia, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> Tgn {
        Tgn::new(wikipedia(Scale::Tiny, 1), TgnConfig::default(), 7)
    }

    fn cfg(bs: usize) -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(bs)
            .with_neighbors(10)
            .with_max_units(3)
    }

    #[test]
    fn runs_and_profiles() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let s = m.run(&mut ex, &cfg(100)).unwrap();
        assert_eq!(s.iterations, 3);
        assert!(s.checksum.is_finite());
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.breakdown.share_of("message_passing") > 0.0);
    }

    #[test]
    fn message_passing_dominates_large_batches() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(500)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        let share = p.breakdown.share_of("message_passing");
        assert!(share > 0.4, "message passing share {share}");
    }

    #[test]
    fn utilization_decreases_with_batch_size() {
        let util = |bs: usize| {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg(bs)).unwrap();
            InferenceProfile::capture(&ex, "inference")
                .utilization
                .busy_fraction
        };
        let small = util(32);
        let large = util(512);
        assert!(
            large < small,
            "util should fall with batch size: {small} -> {large}"
        );
    }

    #[test]
    fn memory_table_evolves() {
        let mut m = build();
        let before = m.memory.table().clone();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(64)).unwrap();
        assert_ne!(&before, m.memory.table());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(64)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cpu_mode_works() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let s = m.run(&mut ex, &cfg(64)).unwrap();
        assert!(s.inference_time.as_nanos() > 0);
    }

    #[test]
    fn one_shard_on_a_multi_gpu_platform_is_bit_identical() {
        let run = |spec: PlatformSpec, shards: usize| {
            let mut m = build();
            let mut ex = Executor::new(spec, ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(64).with_shards(shards)).unwrap();
            (s.checksum, s.inference_time, ex.now())
        };
        // Extra idle GPUs in the device graph change nothing about a
        // single-shard run.
        assert_eq!(
            run(PlatformSpec::default(), 1),
            run(PlatformSpec::multi_gpu_nvlink(4), 1)
        );
    }

    #[test]
    fn sharded_run_is_deterministic_and_faster_on_nvlink() {
        let run = |shards: usize| {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(4), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(256).with_shards(shards)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(4), run(4), "sharded replay is bit-stable");
        let (_, single) = run(1);
        let (_, sharded) = run(4);
        assert!(
            sharded < single,
            "4 NVLink shards ({sharded:?}) should beat one GPU ({single:?})"
        );
    }

    #[test]
    fn sharded_run_prices_peer_traffic() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        m.run(&mut ex, &cfg(128).with_shards(2)).unwrap();
        let peer: u64 = ex
            .timeline()
            .events()
            .iter()
            .filter(|e| e.category == dgnn_device::EventCategory::PeerTransfer)
            .map(|e| e.bytes)
            .sum();
        assert!(
            peer > 0,
            "cross-shard memory rows must cross the interconnect"
        );
    }

    #[test]
    fn pcie_topology_prices_peer_traffic_as_staged_bounces() {
        let time_on = |spec: PlatformSpec| {
            let mut m = build();
            let mut ex = Executor::new(spec, ExecMode::Gpu);
            m.run(&mut ex, &cfg(256).with_shards(4)).unwrap();
            ex.now()
        };
        let nvlink = time_on(PlatformSpec::multi_gpu_nvlink(4));
        let pcie = time_on(PlatformSpec::multi_gpu_pcie(4));
        assert!(
            pcie > nvlink,
            "host-staged bounces ({pcie:?}) must cost more than NVLink hops ({nvlink:?})"
        );
    }
}
