//! End-to-end analyzer tests: every LINT1–5 rule is proven by a
//! flagged adversarial fixture plus a passing clean twin (mini
//! workspace trees under `tests/fixtures/`), the live workspace lints
//! clean with an empty baseline, and baselines suppress exactly the
//! grandfathered keys.

use std::path::{Path, PathBuf};

use dgnn_lint::{analyze_root, Baseline, LintRule, RuleSet};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Analyzes a fixture tree with the given rules and an empty baseline.
fn run(name: &str, rules: &RuleSet) -> dgnn_lint::LintReport {
    analyze_root(&fixture_root(name), rules, &Baseline::empty())
        .unwrap_or_else(|e| panic!("cannot scan fixture {name}: {e}"))
}

/// Asserts the adversarial fixture is flagged (all findings carry the
/// expected rule) and the clean twin passes under *every* rule.
fn prove(rule: LintRule, bad: &str, clean: &str, min_findings: usize) {
    let report = run(bad, &RuleSet::only(&[rule]));
    assert!(
        report.findings.len() >= min_findings,
        "{bad}: expected ≥{min_findings} {} finding(s), got {:#?}",
        rule.id(),
        report.findings
    );
    for f in &report.findings {
        assert_eq!(f.rule, rule, "{bad}: stray rule in {f:#?}");
        assert!(f.line > 0, "{bad}: finding without a line: {f:#?}");
        assert!(!f.excerpt.is_empty(), "{bad}: empty excerpt: {f:#?}");
    }
    let report = run(clean, &RuleSet::all());
    assert!(
        report.is_clean(),
        "{clean}: clean twin must pass every rule, got {:#?}",
        report.findings
    );
}

#[test]
fn lint1_hash_iteration_fixture_pair() {
    prove(LintRule::HashIteration, "lint1_bad", "lint1_clean", 2);
}

#[test]
fn lint2_nondeterminism_fixture_pair() {
    prove(
        LintRule::NondeterminismSource,
        "lint2_bad",
        "lint2_clean",
        3,
    );
}

#[test]
fn lint3_pricing_discipline_fixture_pair() {
    prove(LintRule::PricingDiscipline, "lint3_bad", "lint3_clean", 3);
}

#[test]
fn lint4_structural_coverage_fixture_pair() {
    let report = run("lint4_bad", &RuleSet::only(&[LintRule::StructuralCoverage]));
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("RULE2") && m.contains("clean-twin")),
        "missing RULE2 clean-twin finding: {messages:#?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("dead_knob")),
        "missing dead_knob finding: {messages:#?}"
    );
    assert_eq!(report.findings.len(), 2, "{:#?}", report.findings);
    prove(LintRule::StructuralCoverage, "lint4_bad", "lint4_clean", 2);
}

#[test]
fn lint5_float_reduction_fixture_pair() {
    prove(LintRule::FloatReductionOrder, "lint5_bad", "lint5_clean", 1);
}

#[test]
fn baseline_grandfathers_known_findings() {
    let live = run("lint1_bad", &RuleSet::all());
    assert!(!live.is_clean());
    let body = Baseline::render(&live.findings);
    let dir = std::env::temp_dir().join("dgnn-lint-analyzer-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.txt");
    std::fs::write(&path, body).unwrap();
    let baseline = Baseline::load(&path).unwrap();
    let gated = analyze_root(&fixture_root("lint1_bad"), &RuleSet::all(), &baseline).unwrap();
    assert!(gated.is_clean(), "{:#?}", gated.findings);
    assert_eq!(gated.grandfathered, live.findings.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_report_is_well_formed() {
    let report = run("lint2_bad", &RuleSet::all());
    let json = report.to_json();
    assert!(json.contains("\"LINT2\""), "{json}");
    assert!(json.contains("\"nondeterminism-source\""), "{json}");
    assert!(json.contains("crates/dyngraph/src/gen.rs"), "{json}");
}

/// The acceptance bar for the whole workspace: `dgnn-lint` reports
/// zero findings on the checked-in tree with an **empty** baseline.
#[test]
fn live_workspace_lints_clean_with_empty_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_root(&root, &RuleSet::all(), &Baseline::empty()).unwrap();
    assert!(report.files_scanned > 100, "suspiciously small scan");
    assert!(
        report.is_clean(),
        "live workspace must lint clean:\n{report}"
    );
}
